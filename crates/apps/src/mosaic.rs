//! The `mosaic` application and its loop-perforation study (Figure 3).
//!
//! Mosaic builds a large picture out of many small tile images; its first
//! phase computes the average brightness of every candidate tile. The paper
//! approximates that phase with loop perforation and shows the resulting
//! error is strongly input-dependent: across 800 flower photographs the
//! average error is ≈5 % but individual images reach ≈23 %.
//!
//! The photographs are replaced by procedural "flower" images whose
//! brightness statistics (petal size, contrast, background level) vary
//! widely per image, which is the property that makes perforation error
//! input-dependent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::Image;

/// How loop perforation drops iterations (§2.1: "randomly or uniformly").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perforation {
    /// Keep every `stride`-th pixel.
    Uniform {
        /// Sampling stride; `stride = 50` keeps 2 % of iterations.
        stride: usize,
    },
    /// Keep each pixel independently with probability `keep`.
    Random {
        /// Keep probability in `(0, 1]`.
        keep: f64,
        /// RNG seed for the drop pattern.
        seed: u64,
    },
}

/// Exact first phase of mosaic: mean brightness over all pixels.
#[must_use]
pub fn exact_brightness(image: &Image) -> f64 {
    image.mean()
}

/// Perforated first phase: mean brightness over the kept subset.
///
/// Returns the exact mean if the perforation keeps no pixels (degenerate
/// configurations rather than a panic, matching the benchmark's guard).
#[must_use]
pub fn perforated_brightness(image: &Image, perforation: Perforation) -> f64 {
    let pixels = image.pixels();
    let (sum, count) = match perforation {
        Perforation::Uniform { stride } => {
            let stride = stride.max(1);
            let mut s = 0.0;
            let mut c = 0usize;
            let mut i = 0;
            while i < pixels.len() {
                s += pixels[i];
                c += 1;
                i += stride;
            }
            (s, c)
        }
        Perforation::Random { keep, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = 0.0;
            let mut c = 0usize;
            for &p in pixels {
                if rng.gen::<f64>() < keep {
                    s += p;
                    c += 1;
                }
            }
            (s, c)
        }
    };
    if count == 0 {
        exact_brightness(image)
    } else {
        sum / count as f64
    }
}

/// Generates one procedural flower image: a background field plus petal
/// lobes around a center disc, with per-image contrast and structure drawn
/// from wide ranges so brightness statistics vary strongly across images.
#[must_use]
pub fn flower_image(size: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut img = Image::new(size, size);
    let background: f64 = rng.gen_range(0.05..0.6);
    let petal_level: f64 = rng.gen_range(0.4..1.0);
    let petals = rng.gen_range(4..9_usize);
    let petal_len = rng.gen_range(0.25..0.48) * size as f64;
    let petal_width = rng.gen_range(0.06..0.2) * size as f64;
    let core = rng.gen_range(0.05..0.15) * size as f64;
    let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let texture: f64 = rng.gen_range(0.0..0.25);

    let cx = size as f64 / 2.0;
    let cy = size as f64 / 2.0;
    for y in 0..size {
        for x in 0..size {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let r = (dx * dx + dy * dy).sqrt();
            let theta = dy.atan2(dx);
            // Petal envelope: radial lobes.
            let lobe = ((theta * petals as f64 + phase).cos()).max(0.0);
            let reach = core + petal_len * lobe;
            let mut v = background;
            if r < reach {
                let falloff = 1.0 - (r / reach.max(1e-9));
                v = background + (petal_level - background) * falloff.sqrt();
            }
            if r < petal_width {
                v = petal_level; // flower core
            }
            // High-frequency texture makes subsampling genuinely lossy.
            v += texture * ((x as f64 * 1.7).sin() * (y as f64 * 2.3).cos());
            img.set(x, y, v.clamp(0.0, 1.0));
        }
    }
    img
}

/// One row of the Figure-3 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosaicSample {
    /// Index of the image in the gallery.
    pub image_index: usize,
    /// Exact mean brightness.
    pub exact: f64,
    /// Perforated mean brightness.
    pub approximate: f64,
    /// Relative output error in percent.
    pub error_percent: f64,
}

/// Runs the full Figure-3 experiment: `count` flower images through the
/// given perforation, returning per-image output errors.
///
/// # Examples
///
/// ```
/// use rumba_apps::mosaic::{run_study, Perforation};
///
/// let rows = run_study(50, 48, Perforation::Uniform { stride: 50 }, 7);
/// assert_eq!(rows.len(), 50);
/// assert!(rows.iter().all(|r| r.error_percent >= 0.0));
/// ```
#[must_use]
pub fn run_study(
    count: usize,
    image_size: usize,
    perforation: Perforation,
    seed: u64,
) -> Vec<MosaicSample> {
    // Every image derives its own RNG stream from `seed + index`, so the
    // study fans out over the deterministic pool with results identical to
    // the serial loop at any thread count.
    rumba_parallel::par_map_range(count, |i| {
        let img = flower_image(image_size, seed.wrapping_add(i as u64));
        let exact = exact_brightness(&img);
        let perforation = match perforation {
            Perforation::Random { keep, seed: s } => {
                Perforation::Random { keep, seed: s.wrapping_add(i as u64) }
            }
            other => other,
        };
        let approximate = perforated_brightness(&img, perforation);
        let error_percent = (approximate - exact).abs() / exact.abs().max(1e-9) * 100.0;
        MosaicSample { image_index: i, exact, approximate, error_percent }
    })
}

/// Summary statistics over a study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosaicSummary {
    /// Mean error across images, percent.
    pub mean_percent: f64,
    /// Worst-case image error, percent.
    pub max_percent: f64,
    /// Fraction of images whose error exceeds twice the mean.
    pub above_twice_mean: f64,
}

/// Aggregates a study into the numbers the paper quotes (≈5 % average,
/// ≈23 % max).
#[must_use]
pub fn summarize(samples: &[MosaicSample]) -> MosaicSummary {
    if samples.is_empty() {
        return MosaicSummary { mean_percent: 0.0, max_percent: 0.0, above_twice_mean: 0.0 };
    }
    let mean = samples.iter().map(|s| s.error_percent).sum::<f64>() / samples.len() as f64;
    let max = samples.iter().map(|s| s.error_percent).fold(0.0, f64::max);
    let above = samples.iter().filter(|s| s.error_percent > 2.0 * mean).count() as f64
        / samples.len() as f64;
    MosaicSummary { mean_percent: mean, max_percent: max, above_twice_mean: above }
}

/// A gallery of candidate tiles with their precomputed brightness
/// statistics (mosaic's first phase — the part Figure 3 perforates).
#[derive(Debug, Clone, PartialEq)]
pub struct TileGallery {
    tiles: Vec<Image>,
    brightness: Vec<f64>,
}

impl TileGallery {
    /// Generates `count` flower tiles of `tile_size` pixels and records the
    /// exact mean brightness of each.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn generate(count: usize, tile_size: usize, seed: u64) -> Self {
        assert!(count > 0, "a gallery needs at least one tile");
        // Per-tile RNG streams (`seed + index`) make generation order-free,
        // so tiles render concurrently with bit-identical pixels.
        let tiles: Vec<Image> = rumba_parallel::par_map_range(count, |i| {
            flower_image(tile_size, seed.wrapping_add(i as u64))
        });
        let brightness = tiles.iter().map(exact_brightness).collect();
        Self { tiles, brightness }
    }

    /// Number of tiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the gallery is empty (never true for [`TileGallery::generate`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tiles.
    #[must_use]
    pub fn tiles(&self) -> &[Image] {
        &self.tiles
    }

    /// Mean brightness of each tile.
    #[must_use]
    pub fn brightness(&self) -> &[f64] {
        &self.brightness
    }
}

/// Derives the deterministic RGB triple the matcher compares (the same
/// chroma synthesis the `kmeans` benchmark uses).
fn brightness_rgb(p: f64) -> [f64; 3] {
    [p, (p * 0.8 + 0.1).clamp(0.0, 1.0), (1.0 - p * 0.9).clamp(0.0, 1.0)]
}

/// Mosaic's second phase: for each `tile_size`-square block of `target`,
/// pick the gallery tile whose brightness is nearest under `eval` (the
/// kmeans-shaped 6-in/1-out distance kernel — exact, accelerated, or
/// Rumba-managed) and assemble the result.
///
/// Returns the assembled image and the chosen tile index per block
/// (row-major). Blocks that do not fit are left black.
///
/// # Panics
///
/// Panics if `tile_size` is zero, exceeds the target, or differs from the
/// gallery's tile size.
pub fn build_mosaic(
    target: &Image,
    gallery: &TileGallery,
    tile_size: usize,
    mut eval: impl FnMut(&[f64], &mut [f64]),
) -> (Image, Vec<usize>) {
    assert!(tile_size > 0, "tile size must be nonzero");
    assert!(
        tile_size <= target.width() && tile_size <= target.height(),
        "tiles must fit in the target"
    );
    assert_eq!(
        gallery.tiles()[0].width(),
        tile_size,
        "gallery tiles must match the requested tile size"
    );

    let bw = target.width() / tile_size;
    let bh = target.height() / tile_size;
    let mut out = Image::new(target.width(), target.height());
    let mut choices = Vec::with_capacity(bw * bh);
    let mut input = [0.0; 6];
    let mut dist = [0.0];

    for by in 0..bh {
        for bx in 0..bw {
            // Exact block brightness (the perforation study perturbs this
            // phase; here we take it exact and approximate the matcher).
            let mut sum = 0.0;
            for dy in 0..tile_size {
                for dx in 0..tile_size {
                    sum += target.get(bx * tile_size + dx, by * tile_size + dy);
                }
            }
            let block_rgb = brightness_rgb(sum / (tile_size * tile_size) as f64);

            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (ti, &tb) in gallery.brightness().iter().enumerate() {
                input[..3].copy_from_slice(&block_rgb);
                input[3..].copy_from_slice(&brightness_rgb(tb));
                eval(&input, &mut dist);
                if dist[0] < best_d {
                    best_d = dist[0];
                    best = ti;
                }
            }
            choices.push(best);

            let tile = &gallery.tiles()[best];
            for dy in 0..tile_size {
                for dx in 0..tile_size {
                    out.set(bx * tile_size + dx, by * tile_size + dy, tile.get(dx, dy));
                }
            }
        }
    }
    (out, choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kmeans;
    use crate::Kernel;

    #[test]
    fn flower_images_are_deterministic_and_diverse() {
        assert_eq!(flower_image(32, 1), flower_image(32, 1));
        let a = flower_image(32, 1).mean();
        let b = flower_image(32, 2).mean();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_stride_one_is_exact() {
        let img = flower_image(48, 3);
        let approx = perforated_brightness(&img, Perforation::Uniform { stride: 1 });
        assert!((approx - exact_brightness(&img)).abs() < 1e-12);
    }

    #[test]
    fn random_keep_all_is_exact() {
        let img = flower_image(48, 4);
        let approx = perforated_brightness(&img, Perforation::Random { keep: 1.0, seed: 0 });
        assert!((approx - exact_brightness(&img)).abs() < 1e-12);
    }

    #[test]
    fn zero_keep_degenerates_to_exact() {
        let img = flower_image(16, 5);
        let approx = perforated_brightness(&img, Perforation::Random { keep: 0.0, seed: 0 });
        assert_eq!(approx, exact_brightness(&img));
    }

    #[test]
    fn error_grows_with_aggressiveness() {
        let rows_gentle = run_study(60, 48, Perforation::Random { keep: 0.2, seed: 9 }, 11);
        let rows_harsh = run_study(60, 48, Perforation::Random { keep: 0.01, seed: 9 }, 11);
        assert!(summarize(&rows_harsh).mean_percent > summarize(&rows_gentle).mean_percent);
    }

    #[test]
    fn figure3_shape_input_dependence() {
        // The paper's point: low average error, but a heavy tail.
        let rows = run_study(200, 64, Perforation::Random { keep: 0.02, seed: 1 }, 42);
        let s = summarize(&rows);
        assert!(s.mean_percent > 0.5, "mean {}", s.mean_percent);
        assert!(s.mean_percent < 15.0, "mean {}", s.mean_percent);
        assert!(
            s.max_percent > 2.5 * s.mean_percent,
            "max {} mean {}",
            s.max_percent,
            s.mean_percent
        );
    }

    #[test]
    fn summarize_empty_is_zero() {
        let s = summarize(&[]);
        assert_eq!(s.mean_percent, 0.0);
        assert_eq!(s.max_percent, 0.0);
    }

    #[test]
    fn gallery_is_deterministic_with_exact_brightness() {
        let a = TileGallery::generate(8, 16, 3);
        let b = TileGallery::generate(8, 16, 3);
        assert_eq!(a, b);
        for (tile, &bright) in a.tiles().iter().zip(a.brightness()) {
            assert!((exact_brightness(tile) - bright).abs() < 1e-12);
        }
    }

    #[test]
    fn mosaic_assembles_to_target_dimensions() {
        let target = Image::synthetic(48, 32, 9);
        let gallery = TileGallery::generate(12, 16, 5);
        let kernel = Kmeans::new();
        let (mosaic, choices) =
            build_mosaic(&target, &gallery, 16, |x, out| kernel.compute(x, out));
        assert_eq!(mosaic.width(), 48);
        assert_eq!(mosaic.height(), 32);
        assert_eq!(choices.len(), 3 * 2);
        assert!(choices.iter().all(|&c| c < gallery.len()));
    }

    #[test]
    fn exact_matcher_picks_nearest_brightness_tile() {
        // A flat mid-gray target: every block should pick the tile whose
        // brightness is nearest 0.5.
        let mut target = Image::new(32, 32);
        for p in target.pixels_mut() {
            *p = 0.5;
        }
        let gallery = TileGallery::generate(16, 16, 7);
        let kernel = Kmeans::new();
        let (_, choices) = build_mosaic(&target, &gallery, 16, |x, out| kernel.compute(x, out));
        let nearest = gallery
            .brightness()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - 0.5).abs().partial_cmp(&(*b - 0.5).abs()).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("nonempty gallery");
        assert!(choices.iter().all(|&c| c == nearest), "{choices:?} vs {nearest}");
    }

    #[test]
    fn degenerate_matcher_changes_choices() {
        let target = Image::synthetic(64, 64, 2);
        let gallery = TileGallery::generate(10, 16, 1);
        let kernel = Kmeans::new();
        let (_, exact) = build_mosaic(&target, &gallery, 16, |x, out| kernel.compute(x, out));
        // A constant distance makes every block pick tile 0.
        let (_, constant) = build_mosaic(&target, &gallery, 16, |_, out| out[0] = 1.0);
        assert!(constant.iter().all(|&c| c == 0));
        assert_ne!(exact, constant);
    }
}
