use std::fmt;

/// Application-specific output-quality metrics (Table 1, "Evaluation
/// Metric" column).
///
/// A metric scores one *invocation* (one output element group) in `[0, ∞)`,
/// where `0.0` is exact and `0.1` reads as "10 % error". Whole-application
/// output error is the mean invocation error, matching the paper's usage
/// (for the mismatch metric the mean of 0/1 errors *is* the mismatch rate).
///
/// # Examples
///
/// ```
/// use rumba_apps::ErrorMetric;
///
/// let m = ErrorMetric::MeanRelativeError { eps: 0.01 };
/// assert_eq!(m.invocation_error(&[2.0], &[2.0]), 0.0);
/// assert!((m.invocation_error(&[2.0], &[1.0]) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ErrorMetric {
    /// Mean over output elements of `|approx - exact| / max(|exact|, eps)`.
    MeanRelativeError {
        /// Guard for near-zero exact values.
        eps: f64,
    },
    /// Classification mismatch: 1.0 if the arg-max class differs, else 0.0
    /// (`jmeint`'s "# of mismatches" as a rate).
    MissRate,
    /// Mean over output elements of `|approx - exact| / scale` — the
    /// "mean pixel diff" / "mean output diff" family, with `scale` the full
    /// output range.
    MeanAbsoluteError {
        /// Full-scale output range used for normalization.
        scale: f64,
    },
}

impl ErrorMetric {
    /// Scores one invocation.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    #[must_use]
    pub fn invocation_error(&self, exact: &[f64], approx: &[f64]) -> f64 {
        assert_eq!(exact.len(), approx.len(), "exact/approx width mismatch");
        assert!(!exact.is_empty(), "invocation has no outputs");
        match *self {
            ErrorMetric::MeanRelativeError { eps } => {
                let sum: f64 =
                    exact.iter().zip(approx).map(|(&e, &a)| (a - e).abs() / e.abs().max(eps)).sum();
                sum / exact.len() as f64
            }
            ErrorMetric::MissRate => {
                if argmax(exact) == argmax(approx) {
                    0.0
                } else {
                    1.0
                }
            }
            ErrorMetric::MeanAbsoluteError { scale } => {
                let sum: f64 = exact.iter().zip(approx).map(|(&e, &a)| (a - e).abs()).sum();
                sum / (exact.len() as f64 * scale)
            }
        }
    }

    /// Mean invocation error over parallel rows of exact and approximate
    /// outputs — the whole-application "output error".
    ///
    /// Returns 0.0 for empty input.
    ///
    /// # Panics
    ///
    /// Panics if the two slices disagree on total length or `width` is zero.
    #[must_use]
    pub fn output_error(&self, exact: &[f64], approx: &[f64], width: usize) -> f64 {
        assert!(width > 0, "output width must be nonzero");
        assert_eq!(exact.len(), approx.len());
        assert_eq!(exact.len() % width, 0);
        let n = exact.len() / width;
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..n {
            total += self.invocation_error(
                &exact[i * width..(i + 1) * width],
                &approx[i * width..(i + 1) * width],
            );
        }
        total / n as f64
    }

    /// The paper's name for this metric (Table 1).
    #[must_use]
    pub fn paper_name(&self) -> &'static str {
        match self {
            ErrorMetric::MeanRelativeError { .. } => "Mean Relative Error",
            ErrorMetric::MissRate => "# of mismatches",
            ErrorMetric::MeanAbsoluteError { scale } if *scale == 1.0 => "Mean Pixel Diff",
            ErrorMetric::MeanAbsoluteError { .. } => "Mean Output Diff",
        }
    }
}

impl fmt::Display for ErrorMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic_cases() {
        let m = ErrorMetric::MeanRelativeError { eps: 0.01 };
        assert_eq!(m.invocation_error(&[4.0, 2.0], &[4.0, 2.0]), 0.0);
        let e = m.invocation_error(&[4.0, 2.0], &[2.0, 2.0]);
        assert!((e - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relative_error_eps_guards_zero_exact() {
        let m = ErrorMetric::MeanRelativeError { eps: 0.5 };
        let e = m.invocation_error(&[0.0], &[0.25]);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_uses_argmax() {
        let m = ErrorMetric::MissRate;
        assert_eq!(m.invocation_error(&[0.9, 0.1], &[0.6, 0.4]), 0.0);
        assert_eq!(m.invocation_error(&[0.9, 0.1], &[0.4, 0.6]), 1.0);
    }

    #[test]
    fn absolute_error_normalizes_by_scale() {
        let m = ErrorMetric::MeanAbsoluteError { scale: 2.0 };
        let e = m.invocation_error(&[1.0, 1.0], &[2.0, 0.0]);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn output_error_is_mean_of_rows() {
        let m = ErrorMetric::MeanAbsoluteError { scale: 1.0 };
        let exact = [0.0, 0.0, 1.0, 1.0];
        let approx = [0.0, 0.0, 0.0, 0.0];
        assert!((m.output_error(&exact, &approx, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn output_error_empty_is_zero() {
        let m = ErrorMetric::MissRate;
        assert_eq!(m.output_error(&[], &[], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn invocation_error_panics_on_width_mismatch() {
        let _ = ErrorMetric::MissRate.invocation_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn paper_names() {
        assert_eq!(
            ErrorMetric::MeanRelativeError { eps: 0.01 }.paper_name(),
            "Mean Relative Error"
        );
        assert_eq!(ErrorMetric::MeanAbsoluteError { scale: 1.0 }.to_string(), "Mean Pixel Diff");
    }
}
