//! Full jmeint application: broad collision culling between two triangle
//! meshes with a pluggable intersection evaluator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One triangle, nine coordinates (three vertices × xyz).
pub type Triangle = [f64; 9];

/// A bag of triangles (a game-engine collision mesh).
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    triangles: Vec<Triangle>,
}

impl Mesh {
    /// Wraps a triangle list.
    #[must_use]
    pub fn new(triangles: Vec<Triangle>) -> Self {
        Self { triangles }
    }

    /// The triangles.
    #[must_use]
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Number of triangles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// Whether the mesh has no triangles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Translates every vertex by `(dx, dy, dz)`.
    #[must_use]
    pub fn translated(&self, dx: f64, dy: f64, dz: f64) -> Self {
        let triangles = self
            .triangles
            .iter()
            .map(|t| {
                let mut moved = *t;
                for v in 0..3 {
                    moved[v * 3] += dx;
                    moved[v * 3 + 1] += dy;
                    moved[v * 3 + 2] += dz;
                }
                moved
            })
            .collect();
        Self { triangles }
    }
}

/// Generates a jagged surface mesh of `n` triangles inside the unit cube.
#[must_use]
pub fn random_mesh(n: usize, seed: u64) -> Mesh {
    let mut rng = StdRng::seed_from_u64(seed);
    let triangles = (0..n)
        .map(|_| {
            let cx: f64 = rng.gen_range(0.1..0.9);
            let cy: f64 = rng.gen_range(0.1..0.9);
            let cz: f64 = rng.gen_range(0.1..0.9);
            let mut t = [0.0; 9];
            for v in 0..3 {
                t[v * 3] = cx + rng.gen_range(-0.15..0.15);
                t[v * 3 + 1] = cy + rng.gen_range(-0.15..0.15);
                t[v * 3 + 2] = cz + rng.gen_range(-0.15..0.15);
            }
            t
        })
        .collect();
    Mesh::new(triangles)
}

/// Tests every triangle pair between two meshes through `eval` (the
/// kernel-shaped evaluator: 18 inputs, 2 one-hot class scores) and returns
/// the indices of the pairs judged intersecting.
///
/// The quadratic pair loop is the benchmark's structure — jmeint is the
/// inner test the engine calls millions of times per frame.
pub fn collision_pairs(
    a: &Mesh,
    b: &Mesh,
    mut eval: impl FnMut(&[f64], &mut [f64]),
) -> Vec<(usize, usize)> {
    let mut input = [0.0; 18];
    let mut verdict = [0.0; 2];
    let mut hits = Vec::new();
    for (i, ta) in a.triangles().iter().enumerate() {
        input[..9].copy_from_slice(ta);
        for (j, tb) in b.triangles().iter().enumerate() {
            input[9..].copy_from_slice(tb);
            eval(&input, &mut verdict);
            if verdict[0] > verdict[1] {
                hits.push((i, j));
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Jmeint;
    use crate::Kernel;

    fn exact_eval() -> impl FnMut(&[f64], &mut [f64]) {
        let kernel = Jmeint::new();
        move |x, out| kernel.compute(x, out)
    }

    #[test]
    fn mesh_against_itself_fully_collides_on_diagonal() {
        let mesh = random_mesh(12, 3);
        let hits = collision_pairs(&mesh, &mesh, exact_eval());
        for i in 0..mesh.len() {
            assert!(hits.contains(&(i, i)), "triangle {i} must intersect itself");
        }
    }

    #[test]
    fn far_apart_meshes_do_not_collide() {
        let a = random_mesh(10, 1);
        let b = a.translated(10.0, 0.0, 0.0);
        assert!(collision_pairs(&a, &b, exact_eval()).is_empty());
    }

    #[test]
    fn overlapping_meshes_collide_somewhere() {
        let a = random_mesh(20, 5);
        let b = random_mesh(20, 6);
        assert!(!collision_pairs(&a, &b, exact_eval()).is_empty());
    }

    #[test]
    fn translation_preserves_triangle_count() {
        let a = random_mesh(7, 2);
        assert_eq!(a.translated(1.0, 2.0, 3.0).len(), 7);
    }

    #[test]
    fn approximate_evaluator_changes_verdicts() {
        let a = random_mesh(15, 8);
        let b = random_mesh(15, 9);
        let exact = collision_pairs(&a, &b, exact_eval());
        let always_no = collision_pairs(&a, &b, |_, out| {
            out[0] = 0.0;
            out[1] = 1.0;
        });
        assert!(always_no.is_empty());
        assert_ne!(exact.len(), always_no.len());
    }
}
