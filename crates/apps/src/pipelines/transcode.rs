//! Full jpeg application: transcode a whole image block by block through a
//! pluggable 8×8 codec evaluator.

use crate::image::Image;

/// Pushes every full 8×8 block of `image` through `eval` (64 pixels in, 64
/// reconstructed pixels out) and reassembles the result. Trailing rows or
/// columns that do not fill a block are copied through untouched.
///
/// # Examples
///
/// ```
/// use rumba_apps::image::Image;
/// use rumba_apps::kernels::Jpeg;
/// use rumba_apps::pipelines::transcode_image;
/// use rumba_apps::Kernel;
///
/// let img = Image::synthetic(40, 24, 5);
/// let jpeg = Jpeg::new();
/// let out = transcode_image(&img, |b, o| jpeg.compute(b, o));
/// assert_eq!(out.width(), 40);
/// ```
pub fn transcode_image(image: &Image, mut eval: impl FnMut(&[f64], &mut [f64])) -> Image {
    let mut out = image.clone();
    let bw = image.width() / 8;
    let bh = image.height() / 8;
    let mut block = [0.0; 64];
    let mut coded = [0.0; 64];
    for by in 0..bh {
        for bx in 0..bw {
            for dy in 0..8 {
                for dx in 0..8 {
                    block[dy * 8 + dx] = image.get(bx * 8 + dx, by * 8 + dy);
                }
            }
            eval(&block, &mut coded);
            for dy in 0..8 {
                for dx in 0..8 {
                    out.set(bx * 8 + dx, by * 8 + dy, coded[dy * 8 + dx].clamp(0.0, 1.0));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Jpeg;
    use crate::Kernel;

    #[test]
    fn identity_codec_preserves_the_image() {
        let img = Image::synthetic(32, 32, 9);
        let out = transcode_image(&img, |b, o| o.copy_from_slice(b));
        assert_eq!(out, img);
    }

    #[test]
    fn real_codec_is_close_but_lossy() {
        let img = Image::synthetic(64, 64, 2);
        let jpeg = Jpeg::new();
        let out = transcode_image(&img, |b, o| jpeg.compute(b, o));
        let diff: f64 =
            img.pixels().iter().zip(out.pixels()).map(|(a, b)| (a - b).abs()).sum::<f64>()
                / img.pixels().len() as f64;
        assert!(diff > 0.0, "codec must be lossy");
        assert!(diff < 0.15, "but close: {diff}");
    }

    #[test]
    fn partial_blocks_pass_through() {
        let img = Image::synthetic(20, 20, 4); // 2x2 blocks + 4-pixel margin
        let out = transcode_image(&img, |_, o| o.fill(0.0));
        // Inside the block grid: zeroed. Outside: original.
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(17, 17), img.get(17, 17));
    }
}
