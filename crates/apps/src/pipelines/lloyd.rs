//! Full kmeans application: Lloyd's clustering of an image's pixels with a
//! pluggable point-to-centroid distance evaluator (the approximable kernel).

use crate::image::Image;

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Final centroids.
    pub centroids: Vec<[f64; 3]>,
    /// Per-pixel cluster assignment.
    pub assignments: Vec<usize>,
    /// Number of Lloyd iterations executed (stops early on convergence).
    pub iterations: usize,
    /// Total distance evaluations performed (the kernel invocation count).
    pub distance_evaluations: usize,
}

/// Derives the RGB pixel stream the `kmeans` benchmark clusters, using the
/// same deterministic chroma synthesis as the kernel's dataset generator.
#[must_use]
pub fn rgb_pixels_of(image: &Image) -> Vec<[f64; 3]> {
    image
        .pixels()
        .iter()
        .map(|&p| [p, (p * 0.8 + 0.1).clamp(0.0, 1.0), (1.0 - p * 0.9).clamp(0.0, 1.0)])
        .collect()
}

/// Lloyd's algorithm over `pixels` with `k` clusters. The distance between
/// a pixel and a centroid is computed by `eval`, which takes the kernel's
/// 6-wide input row (pixel rgb + centroid rgb) and writes 1 distance — so
/// the exact kernel, the accelerator, or a managed accelerator can slot in.
///
/// # Panics
///
/// Panics if `pixels` is empty, `k` is zero, or `max_iters` is zero.
pub fn cluster_pixels(
    pixels: &[[f64; 3]],
    k: usize,
    max_iters: usize,
    mut eval: impl FnMut(&[f64], &mut [f64]),
) -> Clustering {
    assert!(!pixels.is_empty(), "need at least one pixel");
    assert!(k > 0, "need at least one cluster");
    assert!(max_iters > 0, "need at least one iteration");

    // Deterministic init: evenly spaced pixels.
    let mut centroids: Vec<[f64; 3]> = (0..k).map(|c| pixels[c * pixels.len() / k]).collect();
    let mut assignments = vec![0usize; pixels.len()];
    let mut distance_evaluations = 0usize;
    let mut iterations = 0usize;
    let mut input = [0.0; 6];
    let mut dist = [0.0];

    for _ in 0..max_iters {
        iterations += 1;
        let mut changed = false;
        for (pi, p) in pixels.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                input[..3].copy_from_slice(p);
                input[3..].copy_from_slice(c);
                eval(&input, &mut dist);
                distance_evaluations += 1;
                if dist[0] < best_d {
                    best_d = dist[0];
                    best = ci;
                }
            }
            if assignments[pi] != best {
                assignments[pi] = best;
                changed = true;
            }
        }
        // Centroid update is exact host code in the benchmark.
        let mut sums = vec![[0.0f64; 3]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in pixels.iter().zip(&assignments) {
            for c in 0..3 {
                sums[a][c] += p[c];
            }
            counts[a] += 1;
        }
        for (ci, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                centroids[ci] =
                    [sum[0] / count as f64, sum[1] / count as f64, sum[2] / count as f64];
            }
        }
        if !changed {
            break;
        }
    }

    Clustering { centroids, assignments, iterations, distance_evaluations }
}

/// Replaces every pixel with its cluster centroid's intensity (the first
/// channel) — the color-quantization output the benchmark produces.
///
/// # Panics
///
/// Panics if the clustering's assignment count differs from the pixel count.
#[must_use]
pub fn quantize_image(image: &Image, clustering: &Clustering) -> Image {
    assert_eq!(image.pixels().len(), clustering.assignments.len());
    let mut out = image.clone();
    for (p, &a) in out.pixels_mut().iter_mut().zip(&clustering.assignments) {
        *p = clustering.centroids[a][0];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kmeans;
    use crate::Kernel;

    fn exact_eval() -> impl FnMut(&[f64], &mut [f64]) {
        let kernel = Kmeans::new();
        move |x, out| kernel.compute(x, out)
    }

    #[test]
    fn separable_points_get_separated() {
        let mut pixels = vec![[0.1, 0.1, 0.1]; 30];
        pixels.extend(vec![[0.9, 0.9, 0.9]; 30]);
        let result = cluster_pixels(&pixels, 2, 20, exact_eval());
        // All of the first group share a cluster, all of the second the other.
        let a0 = result.assignments[0];
        assert!(result.assignments[..30].iter().all(|&a| a == a0));
        let a1 = result.assignments[30];
        assert_ne!(a0, a1);
        assert!(result.assignments[30..].iter().all(|&a| a == a1));
    }

    #[test]
    fn converges_and_counts_evaluations() {
        let img = Image::synthetic(24, 24, 8);
        let pixels = rgb_pixels_of(&img);
        let result = cluster_pixels(&pixels, 4, 50, exact_eval());
        assert!(result.iterations < 50, "should converge early");
        assert_eq!(result.distance_evaluations, result.iterations * pixels.len() * 4);
    }

    #[test]
    fn quantized_image_has_at_most_k_levels() {
        let img = Image::synthetic(16, 16, 2);
        let pixels = rgb_pixels_of(&img);
        let result = cluster_pixels(&pixels, 3, 30, exact_eval());
        let quantized = quantize_image(&img, &result);
        let mut levels: Vec<u64> = quantized.pixels().iter().map(|p| p.to_bits()).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 3);
    }

    #[test]
    fn noisy_distance_degrades_clustering() {
        let img = Image::synthetic(24, 24, 8);
        let pixels = rgb_pixels_of(&img);
        let exact = cluster_pixels(&pixels, 4, 50, exact_eval());
        // A badly biased distance metric scrambles assignments.
        let kernel = Kmeans::new();
        let noisy = cluster_pixels(&pixels, 4, 50, |x, out| {
            kernel.compute(x, out);
            // Bias depends on pixel AND centroid, so it can flip argmins.
            out[0] = (out[0] + ((x[0] + 2.0 * x[3]) * 37.0).sin().abs() * 0.5).max(0.0);
        });
        let disagreement =
            exact.assignments.iter().zip(&noisy.assignments).filter(|(a, b)| a != b).count();
        assert!(disagreement > 0, "noise must change some assignments");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_k_rejected() {
        let _ = cluster_pixels(&[[0.0; 3]], 0, 1, exact_eval());
    }
}
