//! Whole-application drivers around the approximable kernels.
//!
//! The paper's benchmarks are *applications*, not isolated kernels: sobel
//! filters whole images, jpeg transcodes them, kmeans runs Lloyd iterations
//! over every pixel, jmeint culls collisions between meshes. These drivers
//! run the full applications with a *pluggable kernel evaluator*, so the
//! exact function, the raw accelerator, or a Rumba-managed accelerator can
//! be swapped in and the end-to-end output quality compared.
//!
//! Each evaluator is a `FnMut(&[f64], &mut [f64])` matching
//! [`crate::Kernel::compute`]'s shape.

mod collision;
mod edges;
mod lloyd;
mod transcode;

pub use collision::{collision_pairs, random_mesh, Mesh, Triangle};
pub use edges::edge_map;
pub use lloyd::{cluster_pixels, quantize_image, rgb_pixels_of, Clustering};
pub use transcode::transcode_image;
