//! Full sobel application: filter a whole image through a pluggable 3×3
//! window evaluator.

use crate::image::Image;

/// Produces the edge map of `image` by running `eval` (a [`crate::Kernel`]
/// `compute`-shaped evaluator taking 9 window pixels and writing 1 gradient
/// value) over every interior window. Border pixels are left at zero, as
/// the benchmark does.
///
/// # Examples
///
/// ```
/// use rumba_apps::image::Image;
/// use rumba_apps::kernels::Sobel;
/// use rumba_apps::pipelines::edge_map;
/// use rumba_apps::Kernel;
///
/// let img = Image::synthetic(32, 32, 3);
/// let sobel = Sobel::new();
/// let edges = edge_map(&img, |w, out| sobel.compute(w, out));
/// assert_eq!(edges.width(), 32);
/// assert_eq!(edges.get(0, 0), 0.0); // border untouched
/// ```
pub fn edge_map(image: &Image, mut eval: impl FnMut(&[f64], &mut [f64])) -> Image {
    let mut out = Image::new(image.width(), image.height());
    let mut pixel = [0.0];
    for (window, x, y) in image.windows3() {
        eval(&window, &mut pixel);
        out.set(x, y, pixel[0].clamp(0.0, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Sobel;
    use crate::Kernel;

    #[test]
    fn flat_image_has_no_edges() {
        let mut img = Image::new(16, 16);
        for p in img.pixels_mut() {
            *p = 0.5;
        }
        let sobel = Sobel::new();
        let edges = edge_map(&img, |w, out| sobel.compute(w, out));
        assert!(edges.pixels().iter().all(|&p| p < 1e-9));
    }

    #[test]
    fn step_edge_is_detected_where_it_is() {
        let mut img = Image::new(16, 16);
        for y in 0..16 {
            for x in 8..16 {
                img.set(x, y, 1.0);
            }
        }
        let sobel = Sobel::new();
        let edges = edge_map(&img, |w, out| sobel.compute(w, out));
        // Strong response next to the step, none far away.
        assert!(edges.get(8, 8) > 0.9);
        assert!(edges.get(3, 8) < 1e-9);
        assert!(edges.get(13, 8) < 1e-9);
    }

    #[test]
    fn evaluator_substitution_changes_output() {
        let img = Image::synthetic(24, 24, 1);
        let sobel = Sobel::new();
        let exact = edge_map(&img, |w, out| sobel.compute(w, out));
        let zeroed = edge_map(&img, |_, out| out[0] = 0.0);
        assert_ne!(exact, zeroed);
        assert!(zeroed.pixels().iter().all(|&p| p == 0.0));
    }
}
