//! The Rumba benchmark suite: exact CPU implementations of the seven
//! Table-1 kernels, their input generators, and their application-specific
//! error metrics.
//!
//! Each benchmark is a *pure, element-wise* code region — the property Rumba
//! relies on for safe selective re-execution. One "invocation" corresponds
//! to one loop iteration of the approximated region (one option priced, one
//! pixel filtered, one 8×8 block transformed, ...).
//!
//! | Kernel | Domain | Metric |
//! |---|---|---|
//! | [`kernels::Blackscholes`] | financial analysis | mean relative error |
//! | [`kernels::Fft`] | signal processing | mean relative error |
//! | [`kernels::InverseK2j`] | robotics | mean relative error |
//! | [`kernels::Jmeint`] | 3-D gaming | # of mismatches |
//! | [`kernels::Jpeg`] | compression | mean pixel diff |
//! | [`kernels::Kmeans`] | machine learning | mean output diff |
//! | [`kernels::Sobel`] | image processing | mean pixel diff |
//!
//! The crate also carries the [`mosaic`] application (Figure 3's
//! loop-perforation study), procedural [`image`] utilities (Figure 2), and
//! the didactic [`kernels::Gaussian`] kernel (Figure 5).
//!
//! # Examples
//!
//! ```
//! use rumba_apps::{all_kernels, Kernel, Split};
//!
//! for kernel in all_kernels() {
//!     let data = kernel.generate(Split::Train, 42);
//!     assert_eq!(data.input_dim(), kernel.input_dim());
//!     assert!(!data.is_empty());
//! }
//! ```

pub mod image;
pub mod kernels;
mod metric;
pub mod mosaic;
pub mod pipelines;
pub mod purity;

use std::fmt;

pub use metric::ErrorMetric;
use rumba_nn::NnDataset;

/// Which of the paper's two datasets to generate (Table 1's "Train Data" /
/// "Test Data" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Data the offline trainers (accelerator + error predictor) see.
    Train,
    /// Unseen data the online system is evaluated on.
    Test,
}

impl fmt::Display for Split {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Split::Train => "train",
            Split::Test => "test",
        })
    }
}

/// A pure, element-wise approximable code region.
///
/// Implementations are stateless: `compute` may be called concurrently and
/// re-executed freely (this is the purity property §2.2 of the paper builds
/// recovery on).
pub trait Kernel: fmt::Debug + Send + Sync {
    /// Short lowercase benchmark name, e.g. `"blackscholes"`.
    fn name(&self) -> &'static str;

    /// Application domain as listed in Table 1.
    fn domain(&self) -> &'static str;

    /// Number of inputs one invocation consumes.
    fn input_dim(&self) -> usize;

    /// Number of output elements one invocation produces.
    fn output_dim(&self) -> usize;

    /// The exact (host CPU) computation for one invocation.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the slice widths do not match
    /// [`Kernel::input_dim`] / [`Kernel::output_dim`].
    fn compute(&self, input: &[f64], output: &mut [f64]);

    /// The application-specific output-quality metric (Table 1).
    fn metric(&self) -> ErrorMetric;

    /// Neural topology Rumba maps this kernel to (Table 1, "NN Topology
    /// (Rumba)").
    fn rumba_topology(&self) -> Vec<usize>;

    /// Topology the unchecked NPU baseline uses (Table 1, "NN Topology
    /// (NPU)").
    fn npu_topology(&self) -> Vec<usize>;

    /// Generates the train or test invocations, exact outputs included.
    fn generate(&self, split: Split, seed: u64) -> NnDataset;

    /// Estimated cycles one exact invocation costs on the Table-2 core.
    fn cpu_cycles(&self) -> f64;

    /// Fraction of whole-application run time spent in this kernel, used
    /// for Amdahl composition of whole-application speedup and energy.
    fn kernel_fraction(&self) -> f64;

    /// Human-readable description of the training data (Table 1).
    fn train_data_desc(&self) -> &'static str;

    /// Human-readable description of the test data (Table 1).
    fn test_data_desc(&self) -> &'static str;

    /// Convenience wrapper around [`Kernel::compute`] that allocates the
    /// output row.
    fn compute_vec(&self, input: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.output_dim()];
        self.compute(input, &mut out);
        out
    }
}

/// Builds an [`NnDataset`] by running the kernel's exact computation over a
/// flat, row-major input buffer.
///
/// This is the shared back-end of every kernel's [`Kernel::generate`].
///
/// # Panics
///
/// Panics if `inputs.len()` is not a multiple of the kernel input width.
#[must_use]
pub fn dataset_from_inputs(kernel: &dyn Kernel, inputs: &[f64]) -> NnDataset {
    let d = kernel.input_dim();
    assert_eq!(inputs.len() % d, 0, "flat input buffer must be a whole number of rows");
    let n = inputs.len() / d;
    let mut out = vec![0.0; kernel.output_dim()];
    NnDataset::from_fn(d, kernel.output_dim(), n, |i, x, y| {
        x.copy_from_slice(&inputs[i * d..(i + 1) * d]);
        kernel.compute(x, &mut out);
        y.copy_from_slice(&out);
    })
    .expect("kernel dimensions are nonzero")
}

/// The seven Table-1 benchmarks, in the paper's order.
#[must_use]
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(kernels::Blackscholes::new()),
        Box::new(kernels::Fft::new()),
        Box::new(kernels::InverseK2j::new()),
        Box::new(kernels::Jmeint::new()),
        Box::new(kernels::Jpeg::new()),
        Box::new(kernels::Kmeans::new()),
        Box::new(kernels::Sobel::new()),
    ]
}

/// Looks a kernel up by its Table-1 name; also resolves `"gaussian"` (the
/// Figure-5 didactic kernel).
///
/// # Examples
///
/// ```
/// use rumba_apps::kernel_by_name;
///
/// assert!(kernel_by_name("sobel").is_some());
/// assert!(kernel_by_name("doom").is_none());
/// ```
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    match name {
        "blackscholes" => Some(Box::new(kernels::Blackscholes::new())),
        "fft" => Some(Box::new(kernels::Fft::new())),
        "inversek2j" => Some(Box::new(kernels::InverseK2j::new())),
        "jmeint" => Some(Box::new(kernels::Jmeint::new())),
        "jpeg" => Some(Box::new(kernels::Jpeg::new())),
        "kmeans" => Some(Box::new(kernels::Kmeans::new())),
        "sobel" => Some(Box::new(kernels::Sobel::new())),
        "gaussian" => Some(Box::new(kernels::Gaussian::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1_order() {
        let names: Vec<_> = all_kernels().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"]
        );
    }

    #[test]
    fn kernel_by_name_round_trips() {
        for k in all_kernels() {
            let found = kernel_by_name(k.name()).unwrap();
            assert_eq!(found.name(), k.name());
            assert_eq!(found.input_dim(), k.input_dim());
        }
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        for k in all_kernels() {
            let a = k.generate(Split::Train, 9);
            let b = k.generate(Split::Train, 9);
            assert_eq!(a.len(), b.len(), "{}", k.name());
            assert_eq!(a.input(0), b.input(0), "{}", k.name());
            assert_eq!(a.target(0), b.target(0), "{}", k.name());
        }
    }

    #[test]
    fn train_and_test_differ() {
        for k in all_kernels() {
            let train = k.generate(Split::Train, 9);
            let test = k.generate(Split::Test, 9);
            let differs = train.len() != test.len() || train.input(0) != test.input(0);
            assert!(differs, "{} train/test identical", k.name());
        }
    }

    #[test]
    fn topologies_match_kernel_io() {
        for k in all_kernels() {
            for topo in [k.rumba_topology(), k.npu_topology()] {
                assert_eq!(topo[0], k.input_dim(), "{}", k.name());
                assert_eq!(*topo.last().unwrap(), k.output_dim(), "{}", k.name());
                assert!(topo.len() <= 4, "{}: at most 2 hidden layers", k.name());
                assert!(topo[1..topo.len() - 1].iter().all(|&h| h <= 32), "{}", k.name());
            }
        }
    }

    #[test]
    fn rumba_topology_never_larger_than_npu() {
        // Table 1: "In all cases, Rumba's error detection capabilities make
        // it possible to chose a smaller or equal ... NN."
        let macs = |t: &[usize]| -> usize { t.windows(2).map(|w| w[0] * w[1]).sum() };
        for k in all_kernels() {
            assert!(
                macs(&k.rumba_topology()) <= macs(&k.npu_topology()),
                "{}: rumba {:?} vs npu {:?}",
                k.name(),
                k.rumba_topology(),
                k.npu_topology()
            );
        }
    }

    #[test]
    fn dataset_targets_are_exact_outputs() {
        for k in all_kernels() {
            let data = k.generate(Split::Train, 3);
            let i = data.len() / 2;
            assert_eq!(data.target(i), k.compute_vec(data.input(i)), "{}", k.name());
        }
    }

    #[test]
    fn cost_parameters_are_sane() {
        for k in all_kernels() {
            assert!(k.cpu_cycles() > 0.0, "{}", k.name());
            assert!((0.0..=1.0).contains(&k.kernel_fraction()), "{}", k.name());
        }
    }
}
