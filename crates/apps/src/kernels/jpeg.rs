//! `jpeg` — lossy 8×8 block codec path (compression).
//!
//! One invocation pushes one 8×8 pixel block through the JPEG luminance
//! path: level shift → 2-D DCT-II → quantize → dequantize → inverse DCT →
//! clamp. The network learns the whole 64-in/64-out block transform
//! (`64->16->64`, an autoencoder-shaped topology as in the paper).
//!
//! Training blocks come from a 216×200 synthetic image (the paper's 220×200
//! rounded down to whole blocks); test blocks from a different 512×512
//! image.

use rumba_nn::NnDataset;

use crate::image::Image;
use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

/// Standard JPEG luminance quantization table (Annex K), quality 50.
pub const QUANT_TABLE: [f64; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, //
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0, //
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, //
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0, //
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, //
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0, //
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, //
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// The `jpeg` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Jpeg;
/// use rumba_apps::Kernel;
///
/// let k = Jpeg::new();
/// let flat_block = [0.5; 64];
/// let out = k.compute_vec(&flat_block);
/// // A flat block survives quantization nearly unchanged.
/// assert!(out.iter().all(|&p| (p - 0.5).abs() < 0.02));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Jpeg;

impl Jpeg {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

/// 2-D orthonormal DCT-II of an 8×8 block.
#[must_use]
pub fn dct2_8x8(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for u in 0..8 {
        for v in 0..8 {
            let cu = if u == 0 { std::f64::consts::FRAC_1_SQRT_2 } else { 1.0 };
            let cv = if v == 0 { std::f64::consts::FRAC_1_SQRT_2 } else { 1.0 };
            let mut acc = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    acc += block[y * 8 + x]
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = 0.25 * cu * cv * acc;
        }
    }
    out
}

/// 2-D inverse DCT (DCT-III) of an 8×8 coefficient block.
#[must_use]
pub fn idct2_8x8(coeffs: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                for v in 0..8 {
                    let cu = if u == 0 { std::f64::consts::FRAC_1_SQRT_2 } else { 1.0 };
                    let cv = if v == 0 { std::f64::consts::FRAC_1_SQRT_2 } else { 1.0 };
                    acc += cu
                        * cv
                        * coeffs[v * 8 + u]
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[y * 8 + x] = 0.25 * acc;
        }
    }
    out
}

/// The full lossy path for one block of `[0, 1]` pixels.
#[must_use]
pub fn codec_block(block: &[f64; 64]) -> [f64; 64] {
    // Level shift to the codec's signed range.
    let mut shifted = [0.0; 64];
    for (s, &p) in shifted.iter_mut().zip(block) {
        *s = p * 255.0 - 128.0;
    }
    let mut coeffs = dct2_8x8(&shifted);
    for (c, q) in coeffs.iter_mut().zip(QUANT_TABLE) {
        // Quality ≈ 30: the Annex-K table scaled up, the aggressive setting
        // an approximation-tolerant pipeline would pick.
        let q = q * 2.0;
        *c = (*c / q).round() * q;
    }
    let spatial = idct2_8x8(&coeffs);
    let mut out = [0.0; 64];
    for (o, &s) in out.iter_mut().zip(&spatial) {
        *o = ((s + 128.0) / 255.0).clamp(0.0, 1.0);
    }
    out
}

fn blocks_of(image: &Image) -> Vec<f64> {
    let mut flat = Vec::new();
    for block in image.blocks8() {
        flat.extend_from_slice(&block);
    }
    flat
}

impl Kernel for Jpeg {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    fn domain(&self) -> &'static str {
        "Compression"
    }

    fn input_dim(&self) -> usize {
        64
    }

    fn output_dim(&self) -> usize {
        64
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        let block: [f64; 64] = input.try_into().expect("jpeg blocks are 64 pixels");
        output.copy_from_slice(&codec_block(&block));
    }

    fn metric(&self) -> ErrorMetric {
        // Pixels are in [0, 1], so scale 1.0 is full range.
        ErrorMetric::MeanAbsoluteError { scale: 1.0 }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![64, 16, 64]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![64, 16, 64]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        // Train on a lightly textured profiling image, test on a strongly
        // textured one (the paper's Challenge II distribution shift).
        let image = match split {
            Split::Train => Image::synthetic_with_texture(216, 200, seed ^ 0x9999, 0.15),
            Split::Test => Image::synthetic_with_texture(512, 512, seed ^ 0xaaaa, 0.65),
        };
        dataset_from_inputs(self, &blocks_of(&image))
    }

    fn cpu_cycles(&self) -> f64 {
        // Separable DCT/IDCT (~2k MACs) plus quantization on 64 pixels.
        5_600.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.85
    }

    fn train_data_desc(&self) -> &'static str {
        "220x200 pixel image"
    }

    fn test_data_desc(&self) -> &'static str {
        "512x512 pixel image"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [1.0; 64];
        let coeffs = dct2_8x8(&block);
        assert!((coeffs[0] - 8.0).abs() < 1e-9, "dc {}", coeffs[0]);
        assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-9));
    }

    #[test]
    fn dct_idct_round_trip_is_identity() {
        let mut block = [0.0; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 64) as f64 / 64.0;
        }
        let restored = idct2_8x8(&dct2_8x8(&block));
        for (a, b) in restored.iter().zip(&block) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dct_preserves_energy() {
        // Orthonormal transform: Parseval holds.
        let mut block = [0.0; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as f64 * 0.7).sin();
        }
        let coeffs = dct2_8x8(&block);
        let e_in: f64 = block.iter().map(|v| v * v).sum();
        let e_out: f64 = coeffs.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-6);
    }

    #[test]
    fn codec_degrades_gracefully() {
        let k = Jpeg::new();
        let data = k.generate(Split::Train, 0);
        let m = k.metric();
        let mut total = 0.0;
        for (x, y) in data.iter() {
            // The codec is lossy but close: reconstruction error per block
            // stays small relative to full scale.
            total += m.invocation_error(x, y);
        }
        let avg = total / data.len() as f64;
        assert!(avg < 0.1, "codec loss {avg}");
        assert!(avg > 0.0, "codec must actually be lossy");
    }

    #[test]
    fn outputs_stay_in_pixel_range() {
        let k = Jpeg::new();
        let data = k.generate(Split::Test, 1);
        for (_, y) in data.iter().take(128) {
            assert!(y.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn dataset_sizes_match_block_counts() {
        let k = Jpeg::new();
        assert_eq!(k.generate(Split::Train, 0).len(), 27 * 25);
        assert_eq!(k.generate(Split::Test, 0).len(), 64 * 64);
    }
}
