//! `fft` — twiddle-factor computation (signal processing).
//!
//! The NPU benchmark suite approximates the twiddle-factor evaluation inside
//! a radix-2 FFT: given a normalized fraction `t` of the transform size, one
//! invocation produces `(cos 2πt, sin 2πt)`. The surrounding butterfly
//! arithmetic stays exact on the host.
//!
//! This module also carries an exact radix-2 FFT built on the kernel
//! ([`fft_radix2`]) so integration tests can run a whole transform with
//! approximate twiddles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::NnDataset;

use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

const TRAIN_N: usize = 5_000;
const TEST_N: usize = 5_000;

/// The `fft` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Fft;
/// use rumba_apps::Kernel;
///
/// let out = Fft::new().compute_vec(&[0.25]);
/// assert!(out[0].abs() < 1e-12);        // cos(π/2)
/// assert!((out[1] - 1.0).abs() < 1e-12); // sin(π/2)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fft;

impl Fft {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    fn sample_inputs(n: usize, seed: u64) -> Vec<f64> {
        // Quarter-wave range: optimized FFTs evaluate twiddles only on
        // [0, 1/4) and recover the rest by symmetry, so that is the domain
        // the accelerated kernel actually sees.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..0.25)).collect()
    }
}

impl Kernel for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn domain(&self) -> &'static str {
        "Signal Processing"
    }

    fn input_dim(&self) -> usize {
        1
    }

    fn output_dim(&self) -> usize {
        2
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        let theta = 2.0 * std::f64::consts::PI * input[0];
        output[0] = theta.cos();
        output[1] = theta.sin();
    }

    fn metric(&self) -> ErrorMetric {
        // cos(2π/4 · t) reaches 0 at the top of the quarter-wave range; the
        // guard keeps the relative metric finite there.
        ErrorMetric::MeanRelativeError { eps: 0.1 }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![1, 1, 2]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![1, 4, 4, 2]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        let (n, salt) = match split {
            Split::Train => (TRAIN_N, 0x3333),
            Split::Test => (TEST_N, 0x4444),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, seed ^ salt))
    }

    fn cpu_cycles(&self) -> f64 {
        // sin + cos on the x86-64 core (fsincos-class latency).
        180.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.75
    }

    fn train_data_desc(&self) -> &'static str {
        "5K random fp numbers"
    }

    fn test_data_desc(&self) -> &'static str {
        "5K random fp numbers"
    }
}

/// Complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

/// In-place radix-2 decimation-in-time FFT using a caller-supplied twiddle
/// evaluator `twiddle(t) -> (cos 2πt, sin 2πt)`, so the approximate kernel
/// can be substituted for the exact one.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_radix2(data: &mut [Complex], mut twiddle: impl FnMut(f64) -> (f64, f64)) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                // Negative exponent: e^{-2πik/len}.
                let (c, s) = twiddle(k as f64 / len as f64);
                let w = (c, -s);
                let (ar, ai) = data[start + k];
                let (br, bi) = data[start + k + half];
                let tr = br * w.0 - bi * w.1;
                let ti = br * w.1 + bi * w.0;
                data[start + k] = (ar + tr, ai + ti);
                data[start + k + half] = (ar - tr, ai - ti);
            }
        }
        len *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddles_lie_on_unit_circle() {
        let k = Fft::new();
        for i in 0..64 {
            let out = k.compute_vec(&[i as f64 / 64.0]);
            let r = out[0] * out[0] + out[1] * out[1];
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        let k = Fft::new();
        fft_radix2(&mut data, |t| {
            let out = k.compute_vec(&[t]);
            (out[0], out[1])
        });
        for (re, im) in data {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_bin() {
        let n = 32;
        let freq = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * freq as f64 * i as f64 / n as f64;
                (theta.cos(), 0.0)
            })
            .collect();
        let k = Fft::new();
        fft_radix2(&mut data, |t| {
            let out = k.compute_vec(&[t]);
            (out[0], out[1])
        });
        let mags: Vec<f64> = data.iter().map(|(r, i)| (r * r + i * i).sqrt()).collect();
        let peak = mags.iter().cloned().fold(0.0, f64::max);
        assert!((mags[freq] - peak).abs() < 1e-9);
        assert!((mags[freq] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 6];
        fft_radix2(&mut data, |t| (t.cos(), t.sin()));
    }

    #[test]
    fn dataset_sizes_match_table1() {
        let k = Fft::new();
        assert_eq!(k.generate(Split::Train, 0).len(), 5_000);
        assert_eq!(k.generate(Split::Test, 0).len(), 5_000);
    }
}
