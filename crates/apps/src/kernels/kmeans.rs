//! `kmeans` — pixel-to-centroid distance (machine learning).
//!
//! One invocation computes the Euclidean distance between an RGB pixel and
//! a cluster centroid (six inputs, one output) — the hot inner loop of
//! k-means image clustering. As in the paper (and the NPU work), the kernel
//! is tiny, so offloading it to the accelerator yields little benefit and
//! can even cost energy; this benchmark exists to show that boundary.
//!
//! Datasets are (pixel, centroid) pairs drawn from synthetic images; the
//! paper's full 220×200 / 512×512 pixel streams are subsampled to keep the
//! harness fast, which leaves the error statistics unchanged (documented in
//! DESIGN.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::NnDataset;

use crate::image::Image;
use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

const TRAIN_N: usize = 6_000;
const TEST_N: usize = 16_000;
/// Number of centroids the clustering pass uses.
pub const K: usize = 6;

/// The `kmeans` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Kmeans;
/// use rumba_apps::Kernel;
///
/// let d = Kmeans::new().compute_vec(&[0.0, 0.0, 0.0, 1.0, 0.0, 0.0])[0];
/// assert!((d - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Kmeans;

impl Kmeans {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Builds (pixel, centroid) pairs from a synthetic image: the pixel's
    /// three channels are derived from the grayscale intensity plus two
    /// phase-shifted copies, and centroids are fixed per split.
    fn sample_inputs(n: usize, image: &Image, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centroids: Vec<[f64; 3]> =
            (0..K).map(|_| std::array::from_fn(|_| rng.gen_range(0.0..1.0))).collect();
        let pixels = image.pixels();
        let mut flat = Vec::with_capacity(n * 6);
        for i in 0..n {
            let p = pixels[(i * 7919) % pixels.len()];
            // Synthesize RGB from intensity with deterministic chroma.
            let r = p;
            let g = (p * 0.8 + 0.1).clamp(0.0, 1.0);
            let b = (1.0 - p * 0.9).clamp(0.0, 1.0);
            let c = centroids[i % K];
            flat.extend_from_slice(&[r, g, b, c[0], c[1], c[2]]);
        }
        flat
    }
}

/// Euclidean distance between two RGB points.
#[must_use]
pub fn rgb_distance(p: [f64; 3], c: [f64; 3]) -> f64 {
    let dx = p[0] - c[0];
    let dy = p[1] - c[1];
    let dz = p[2] - c[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

impl Kernel for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn domain(&self) -> &'static str {
        "Machine Learning"
    }

    fn input_dim(&self) -> usize {
        6
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        output[0] = rgb_distance([input[0], input[1], input[2]], [input[3], input[4], input[5]]);
    }

    fn metric(&self) -> ErrorMetric {
        // Distances span [0, √3]; normalize output diff to that range.
        ErrorMetric::MeanAbsoluteError { scale: 3f64.sqrt() }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![6, 4, 4, 1]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![6, 8, 4, 1]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        let (n, image, salt) = match split {
            Split::Train => (TRAIN_N, Image::synthetic(220, 200, seed ^ 0xbbbb), 0xbbbb),
            Split::Test => (TEST_N, Image::synthetic(512, 512, seed ^ 0xcccc), 0xcccc),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, &image, seed ^ salt))
    }

    fn cpu_cycles(&self) -> f64 {
        // Three subtract-multiply-accumulates and one sqrt: the kernel is
        // nearly free on the host, which is the point of this benchmark.
        55.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.35
    }

    fn train_data_desc(&self) -> &'static str {
        "220x200 pixel image"
    }

    fn test_data_desc(&self) -> &'static str {
        "512x512 pixel image"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_axioms() {
        let p = [0.2, 0.4, 0.9];
        let c = [0.7, 0.1, 0.3];
        assert_eq!(rgb_distance(p, p), 0.0);
        assert_eq!(rgb_distance(p, c), rgb_distance(c, p));
        assert!(rgb_distance(p, c) > 0.0);
    }

    #[test]
    fn distance_triangle_inequality() {
        let a = [0.0, 0.0, 0.0];
        let b = [0.5, 0.5, 0.5];
        let c = [1.0, 0.2, 0.8];
        assert!(rgb_distance(a, c) <= rgb_distance(a, b) + rgb_distance(b, c) + 1e-12);
    }

    #[test]
    fn outputs_bounded_by_sqrt3() {
        let k = Kmeans::new();
        let data = k.generate(Split::Test, 0);
        for (_, y) in data.iter() {
            assert!(y[0] >= 0.0 && y[0] <= 3f64.sqrt() + 1e-12);
        }
    }

    #[test]
    fn inputs_are_valid_colors() {
        let k = Kmeans::new();
        let data = k.generate(Split::Train, 5);
        for (x, _) in data.iter() {
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn dataset_sizes() {
        let k = Kmeans::new();
        assert_eq!(k.generate(Split::Train, 0).len(), TRAIN_N);
        assert_eq!(k.generate(Split::Test, 0).len(), TEST_N);
    }
}
