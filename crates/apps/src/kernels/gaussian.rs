//! `gaussian` — the didactic kernel behind Figure 5 and the EVP/EEP study.
//!
//! One invocation evaluates a Gaussian bell curve at a point `x ∈ [-16, 16]`
//! (the paper's Figure 5 x-range). A deliberately tiny network approximates
//! it, concentrating errors near the curve's shoulders — which is what makes
//! the *errors* easier to predict than the output itself (§3.2).
//!
//! Not part of the Table-1 suite; resolved via
//! [`crate::kernel_by_name`]`("gaussian")`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::NnDataset;

use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

const TRAIN_N: usize = 2_000;
const TEST_N: usize = 2_000;
/// Standard deviation of the bell curve.
pub const SIGMA: f64 = 5.0;

/// The `gaussian` didactic kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Gaussian;
/// use rumba_apps::Kernel;
///
/// let k = Gaussian::new();
/// assert!((k.compute_vec(&[0.0])[0] - 1.0).abs() < 1e-12);
/// assert!(k.compute_vec(&[16.0])[0] < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gaussian;

impl Gaussian {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    fn sample_inputs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-16.0..16.0)).collect()
    }
}

impl Kernel for Gaussian {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn domain(&self) -> &'static str {
        "Didactic"
    }

    fn input_dim(&self) -> usize {
        1
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        output[0] = (-input[0] * input[0] / (2.0 * SIGMA * SIGMA)).exp();
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::MeanAbsoluteError { scale: 1.0 }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![1, 2, 1]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![1, 2, 1]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        let (n, salt) = match split {
            Split::Train => (TRAIN_N, 0xf0f0),
            Split::Test => (TEST_N, 0x0f0f),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, seed ^ salt))
    }

    fn cpu_cycles(&self) -> f64 {
        90.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.9
    }

    fn train_data_desc(&self) -> &'static str {
        "2K points on [-16, 16]"
    }

    fn test_data_desc(&self) -> &'static str {
        "2K points on [-16, 16]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_curve_shape() {
        let k = Gaussian::new();
        assert!(k.compute_vec(&[0.0])[0] > k.compute_vec(&[5.0])[0]);
        assert!(k.compute_vec(&[5.0])[0] > k.compute_vec(&[10.0])[0]);
    }

    #[test]
    fn symmetric_about_zero() {
        let k = Gaussian::new();
        for &x in &[1.0, 4.2, 9.9] {
            assert!((k.compute_vec(&[x])[0] - k.compute_vec(&[-x])[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn outputs_in_unit_interval() {
        let k = Gaussian::new();
        let d = k.generate(Split::Test, 0);
        for (_, y) in d.iter() {
            assert!((0.0..=1.0).contains(&y[0]));
        }
    }
}
