//! `inversek2j` — inverse kinematics for a 2-joint planar arm (robotics).
//!
//! One invocation maps an end-effector position `(x, y)` to the two joint
//! angles `(θ1, θ2)` of an elbow-down two-link arm. The closed form involves
//! `acos`/`atan2` and is numerically ill-conditioned near the workspace
//! boundary — exactly where the neural approximation's large errors
//! concentrate, which makes this benchmark a showcase for input-based error
//! prediction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::NnDataset;

use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

/// Upper-arm length.
pub const L1: f64 = 0.5;
/// Forearm length.
pub const L2: f64 = 0.5;
const TRAIN_N: usize = 10_000;
const TEST_N: usize = 10_000;

/// The `inversek2j` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::{forward_kinematics, InverseK2j};
/// use rumba_apps::Kernel;
///
/// let k = InverseK2j::new();
/// let angles = k.compute_vec(&[0.3, 0.4]);
/// let (x, y) = forward_kinematics(angles[0], angles[1]);
/// assert!((x - 0.3).abs() < 1e-9 && (y - 0.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InverseK2j;

impl InverseK2j {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Samples reachable targets by drawing joint angles and running the
    /// forward model, so every generated input has an exact solution.
    fn sample_inputs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * 2);
        for _ in 0..n {
            // Front-quadrant workspace: the benchmark drives the arm over
            // targets ahead of its base (θ1 in the first quadrant), the
            // usual operating envelope for a tabletop 2-link arm. This also
            // keeps the atan2 branch cut out of the learned domain; the
            // remaining hard spots are the workspace boundaries (θ2 → 0 or
            // π), which is where the approximation errors concentrate.
            let t1 = rng.gen_range(0.1..std::f64::consts::FRAC_PI_2);
            // Elbow-down convention: θ2 in (0, π). Keep slightly inside the
            // open interval so acos never sees |argument| > 1 from rounding.
            let t2 = rng.gen_range(0.05..std::f64::consts::PI - 0.05);
            let (x, y) = forward_kinematics(t1, t2);
            flat.push(x);
            flat.push(y);
        }
        flat
    }
}

/// Forward kinematics of the two-link arm: joint angles to end-effector
/// position.
#[must_use]
pub fn forward_kinematics(theta1: f64, theta2: f64) -> (f64, f64) {
    let x = L1 * theta1.cos() + L2 * (theta1 + theta2).cos();
    let y = L1 * theta1.sin() + L2 * (theta1 + theta2).sin();
    (x, y)
}

/// Closed-form elbow-down inverse kinematics.
///
/// Positions outside the reachable annulus are clamped to its boundary
/// (matching the benchmark's behaviour on unreachable inputs).
#[must_use]
pub fn inverse_kinematics(x: f64, y: f64) -> (f64, f64) {
    let d2 = x * x + y * y;
    let cos_t2 = ((d2 - L1 * L1 - L2 * L2) / (2.0 * L1 * L2)).clamp(-1.0, 1.0);
    let theta2 = cos_t2.acos();
    let k1 = L1 + L2 * theta2.cos();
    let k2 = L2 * theta2.sin();
    let theta1 = y.atan2(x) - k2.atan2(k1);
    (theta1, theta2)
}

impl Kernel for InverseK2j {
    fn name(&self) -> &'static str {
        "inversek2j"
    }

    fn domain(&self) -> &'static str {
        "Robotics"
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn output_dim(&self) -> usize {
        2
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        let (t1, t2) = inverse_kinematics(input[0], input[1]);
        output[0] = t1;
        output[1] = t2;
    }

    fn metric(&self) -> ErrorMetric {
        // θ1 legitimately crosses zero; a guard of ~0.5 rad keeps the
        // relative metric from exploding on small absolute angle errors.
        ErrorMetric::MeanRelativeError { eps: 0.5 }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![2, 2, 2]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![2, 8, 2]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        let (n, salt) = match split {
            Split::Train => (TRAIN_N, 0x5555),
            Split::Test => (TEST_N, 0x6666),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, seed ^ salt))
    }

    fn cpu_cycles(&self) -> f64 {
        // acos, two atan2, sin/cos, division chain.
        300.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.97
    }

    fn train_data_desc(&self) -> &'static str {
        "10K random (x, y) points"
    }

    fn test_data_desc(&self) -> &'static str {
        "10K random (x, y) points"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_then_forward_round_trips() {
        let k = InverseK2j::new();
        let data = k.generate(Split::Test, 4);
        for i in (0..data.len()).step_by(97) {
            let x = data.input(i);
            let angles = data.target(i);
            let (fx, fy) = forward_kinematics(angles[0], angles[1]);
            assert!((fx - x[0]).abs() < 1e-6, "x: {fx} vs {}", x[0]);
            assert!((fy - x[1]).abs() < 1e-6, "y: {fy} vs {}", x[1]);
        }
    }

    #[test]
    fn elbow_down_angles_in_range() {
        let k = InverseK2j::new();
        let data = k.generate(Split::Train, 1);
        for (_, angles) in data.iter() {
            assert!((0.0..=std::f64::consts::PI).contains(&angles[1]));
        }
    }

    #[test]
    fn unreachable_target_is_clamped_not_nan() {
        let (t1, t2) = inverse_kinematics(5.0, 5.0);
        assert!(t1.is_finite() && t2.is_finite());
        assert!((t2 - 0.0).abs() < 1e-9, "fully stretched arm");
    }

    #[test]
    fn straight_reach_along_x() {
        // Arm stretched along +x: target (L1+L2, 0) → θ1 = 0, θ2 = 0.
        let (t1, t2) = inverse_kinematics(L1 + L2, 0.0);
        assert!(t1.abs() < 1e-9 && t2.abs() < 1e-9);
    }

    #[test]
    fn dataset_sizes_match_table1() {
        let k = InverseK2j::new();
        assert_eq!(k.generate(Split::Train, 0).len(), 10_000);
        assert_eq!(k.generate(Split::Test, 0).len(), 10_000);
    }

    #[test]
    fn generated_targets_are_reachable() {
        let k = InverseK2j::new();
        let data = k.generate(Split::Train, 2);
        for (x, _) in data.iter() {
            let r = (x[0] * x[0] + x[1] * x[1]).sqrt();
            assert!(r <= L1 + L2 + 1e-9);
            assert!(r >= (L1 - L2).abs() - 1e-9);
        }
    }
}
