//! Exact CPU implementations of the approximable kernels.
//!
//! Each submodule provides one [`crate::Kernel`]: the exact computation, the
//! Table-1 datasets, topologies, and metric, plus the timing parameters the
//! energy model consumes.

mod blackscholes;
mod fft;
mod gaussian;
mod inversek2j;
mod jmeint;
mod jpeg;
mod kmeans;
mod sobel;

pub use blackscholes::{call_price, normal_cdf, Blackscholes};
pub use fft::{fft_radix2, Complex, Fft};
pub use gaussian::{Gaussian, SIGMA};
pub use inversek2j::{forward_kinematics, inverse_kinematics, InverseK2j, L1, L2};
pub use jmeint::{tri_tri_intersect, Jmeint};
pub use jpeg::{codec_block, dct2_8x8, idct2_8x8, Jpeg, QUANT_TABLE};
pub use kmeans::{rgb_distance, Kmeans, K};
pub use sobel::{gradient_magnitude, Sobel, GX, GY};
