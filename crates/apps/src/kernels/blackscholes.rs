//! `blackscholes` — European call-option pricing (financial analysis).
//!
//! One invocation prices one option via the Black-Scholes closed form. The
//! paper's Rumba variant maps a 3-input formulation to a `3->8->8->1`
//! network; we use the scale-free parameterization (moneyness, maturity,
//! volatility) with the risk-free rate fixed, which carries the same
//! information as the classic 6-input PARSEC formulation once prices are
//! normalized by the strike.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::NnDataset;

use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

/// Risk-free rate used by every invocation.
const RATE: f64 = 0.03;
const TRAIN_N: usize = 5_000;
const TEST_N: usize = 5_000;

/// The `blackscholes` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Blackscholes;
/// use rumba_apps::Kernel;
///
/// let k = Blackscholes::new();
/// // Deep in-the-money option with no time value ≈ intrinsic value.
/// let price = k.compute_vec(&[1.4, 0.05, 0.1])[0];
/// assert!((price - 0.4).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Blackscholes;

impl Blackscholes {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    fn sample_inputs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * 3);
        for _ in 0..n {
            flat.push(rng.gen_range(0.6..1.4)); // moneyness S/K
            flat.push(rng.gen_range(0.05..1.0)); // maturity (years)
            flat.push(rng.gen_range(0.1..0.6)); // volatility
        }
        flat
    }
}

/// Cumulative distribution function of the standard normal, via the
/// Abramowitz & Stegun 7.1.26 rational approximation of `erf` (|error| <
/// 1.5e-7) — the same polynomial CNDF the PARSEC source uses.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    let t = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(t))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Prices a European call with strike 1 and the module's fixed rate.
#[must_use]
pub fn call_price(moneyness: f64, maturity: f64, volatility: f64) -> f64 {
    let sqrt_t = maturity.sqrt();
    let d1 = ((moneyness.ln()) + (RATE + 0.5 * volatility * volatility) * maturity)
        / (volatility * sqrt_t);
    let d2 = d1 - volatility * sqrt_t;
    moneyness * normal_cdf(d1) - (-RATE * maturity).exp() * normal_cdf(d2)
}

impl Kernel for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn domain(&self) -> &'static str {
        "Financial Analysis"
    }

    fn input_dim(&self) -> usize {
        3
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        output[0] = call_price(input[0], input[1], input[2]);
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::MeanRelativeError { eps: 0.01 }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![3, 8, 8, 1]
    }

    fn npu_topology(&self) -> Vec<usize> {
        // Paper lists 6->8->8->1 for the six-input PARSEC formulation; with
        // the scale-free inputs the hidden structure is unchanged.
        vec![3, 8, 8, 1]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        let (n, salt) = match split {
            Split::Train => (TRAIN_N, 0x1111),
            Split::Test => (TEST_N, 0x2222),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, seed ^ salt))
    }

    fn cpu_cycles(&self) -> f64 {
        // ln, exp, sqrt, two polynomial CNDFs plus arithmetic on the
        // Table-2 out-of-order core.
        320.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.8
    }

    fn train_data_desc(&self) -> &'static str {
        "5K inputs"
    }

    fn test_data_desc(&self) -> &'static str {
        "5K outputs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_symmetry_and_anchors() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        for &x in &[0.1, 0.7, 2.3] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn price_matches_reference_value() {
        // Standard textbook case: S=K (m=1), t=1, v=0.2, r=0.03 → C ≈ 0.0938.
        let c = call_price(1.0, 1.0, 0.2);
        assert!((c - 0.0938).abs() < 5e-4, "price {c}");
    }

    #[test]
    fn price_monotone_in_volatility() {
        let lo = call_price(1.0, 0.5, 0.1);
        let hi = call_price(1.0, 0.5, 0.5);
        assert!(hi > lo);
    }

    #[test]
    fn price_bounded_by_no_arbitrage() {
        // max(m - e^{-rt}, 0) <= C <= m
        for &(m, t, v) in &[(0.7, 0.3, 0.2), (1.0, 1.0, 0.6), (1.3, 0.05, 0.15)] {
            let c = call_price(m, t, v);
            let lower = (m - (-RATE * t).exp()).max(0.0);
            assert!(c >= lower - 1e-9 && c <= m + 1e-9, "({m},{t},{v}) -> {c}");
        }
    }

    #[test]
    fn dataset_sizes_match_table1() {
        let k = Blackscholes::new();
        assert_eq!(k.generate(Split::Train, 0).len(), 5_000);
        assert_eq!(k.generate(Split::Test, 0).len(), 5_000);
    }

    #[test]
    fn inputs_within_declared_ranges() {
        let k = Blackscholes::new();
        let d = k.generate(Split::Test, 1);
        for (x, _) in d.iter() {
            assert!((0.6..1.4).contains(&x[0]));
            assert!((0.05..1.0).contains(&x[1]));
            assert!((0.1..0.6).contains(&x[2]));
        }
    }
}
