//! `sobel` — 3×3 edge-detection filter (image processing).
//!
//! One invocation consumes a 3×3 pixel window and produces the normalized
//! Sobel gradient magnitude of its center pixel. Windows come from
//! synthetic 512×512 images (train and test use different images), uniformly
//! subsampled to keep the harness fast.

use rumba_nn::NnDataset;

use crate::image::Image;
use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

const TRAIN_N: usize = 8_000;
const TEST_N: usize = 16_000;

/// Horizontal Sobel stencil, row-major.
pub const GX: [f64; 9] = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];
/// Vertical Sobel stencil, row-major.
pub const GY: [f64; 9] = [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0];

/// The `sobel` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Sobel;
/// use rumba_apps::Kernel;
///
/// // A flat window has (numerically) zero gradient.
/// let out = Sobel::new().compute_vec(&[0.4; 9]);
/// assert!(out[0].abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sobel;

impl Sobel {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    fn sample_inputs(n: usize, image: &Image) -> Vec<f64> {
        let windows: Vec<[f64; 9]> = image.windows3().map(|(w, _, _)| w).collect();
        let stride = (windows.len() / n).max(1);
        let mut flat = Vec::with_capacity(n * 9);
        for i in 0..n {
            flat.extend_from_slice(&windows[(i * stride) % windows.len()]);
        }
        flat
    }
}

/// Sobel gradient magnitude of a 3×3 window, clamped into `[0, 1]` — the
/// AxBench convention, where any strong edge saturates to full intensity.
#[must_use]
pub fn gradient_magnitude(window: &[f64; 9]) -> f64 {
    let mut gx = 0.0;
    let mut gy = 0.0;
    for i in 0..9 {
        gx += GX[i] * window[i];
        gy += GY[i] * window[i];
    }
    (gx * gx + gy * gy).sqrt().min(1.0)
}

impl Kernel for Sobel {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn domain(&self) -> &'static str {
        "Image Processing"
    }

    fn input_dim(&self) -> usize {
        9
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        let window: [f64; 9] = input.try_into().expect("sobel windows are 3x3");
        output[0] = gradient_magnitude(&window);
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::MeanAbsoluteError { scale: 1.0 }
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![9, 8, 1]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![9, 8, 1]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        // Profiling inputs are milder than what the deployed system sees
        // (the paper's Challenge II): training uses a lightly textured
        // image, testing a strongly textured one.
        let (n, image) = match split {
            Split::Train => (TRAIN_N, Image::synthetic_with_texture(512, 512, seed ^ 0xdddd, 0.2)),
            Split::Test => (TEST_N, Image::synthetic_with_texture(512, 512, seed ^ 0xeeee, 0.5)),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, &image))
    }

    fn cpu_cycles(&self) -> f64 {
        // Two 9-tap convolutions plus a square root.
        140.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.8
    }

    fn train_data_desc(&self) -> &'static str {
        "512x512 pixel image"
    }

    fn test_data_desc(&self) -> &'static str {
        "512x512 pixel image"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_edge_saturates() {
        let window = [0.0, 0.5, 1.0, 0.0, 0.5, 1.0, 0.0, 0.5, 1.0];
        // gx = 4, gy = 0 → raw magnitude 4, clamped to 1 (a full edge).
        assert_eq!(gradient_magnitude(&window), 1.0);
        // A faint edge stays proportional: gx = 0.4 → magnitude 0.4.
        let faint = [0.0, 0.05, 0.1, 0.0, 0.05, 0.1, 0.0, 0.05, 0.1];
        assert!((gradient_magnitude(&faint) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn gradient_is_rotation_symmetric() {
        let horizontal = [0.0, 0.0, 0.0, 0.5, 0.5, 0.5, 1.0, 1.0, 1.0];
        let vertical = [0.0, 0.5, 1.0, 0.0, 0.5, 1.0, 0.0, 0.5, 1.0];
        assert!((gradient_magnitude(&horizontal) - gradient_magnitude(&vertical)).abs() < 1e-12);
    }

    #[test]
    fn output_clamped_to_unit() {
        let window = [0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        assert!(gradient_magnitude(&window) <= 1.0);
    }

    #[test]
    fn dataset_outputs_in_range() {
        let k = Sobel::new();
        let data = k.generate(Split::Train, 0);
        for (_, y) in data.iter() {
            assert!((0.0..=1.0).contains(&y[0]));
        }
    }

    #[test]
    fn dataset_sizes() {
        let k = Sobel::new();
        assert_eq!(k.generate(Split::Train, 0).len(), TRAIN_N);
        assert_eq!(k.generate(Split::Test, 0).len(), TEST_N);
    }

    #[test]
    fn train_and_test_images_differ() {
        let k = Sobel::new();
        let a = k.generate(Split::Train, 0);
        let b = k.generate(Split::Test, 0);
        assert_ne!(a.input(0), b.input(0));
    }
}
