//! `jmeint` — triangle-triangle intersection (3-D gaming).
//!
//! One invocation tests whether two 3-D triangles (18 coordinates)
//! intersect, using Möller's interval-overlap method — the same jME engine
//! routine the NPU suite approximates. The network emits two scores and the
//! class is their arg-max; the metric counts mismatches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::NnDataset;

use crate::{dataset_from_inputs, ErrorMetric, Kernel, Split};

const TRAIN_N: usize = 10_000;
const TEST_N: usize = 10_000;
const EPS: f64 = 1e-12;

type Vec3 = [f64; 3];

/// The `jmeint` benchmark kernel. See the module-level docs above.
///
/// # Examples
///
/// ```
/// use rumba_apps::kernels::Jmeint;
/// use rumba_apps::Kernel;
///
/// // Two triangles crossing at the origin.
/// let input = [
///     -1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, // T1 in z=0 plane
///     0.0, 0.5, -1.0, 0.0, 0.5, 1.0, 0.0, -1.0, 0.0, // T2 pierces it
/// ];
/// let out = Jmeint::new().compute_vec(&input);
/// assert!(out[0] > out[1], "triangles intersect");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Jmeint;

impl Jmeint {
    /// Creates the kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Samples triangle pairs with the second triangle placed at a random
    /// distance from the first so intersecting and disjoint pairs are both
    /// well represented.
    fn sample_inputs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * 18);
        for _ in 0..n {
            let t1: [f64; 9] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            let mut t2 = [0.0f64; 9];
            if rng.gen::<f64>() < 0.55 {
                // Nearby pair: T2 vertices scatter around T1's centroid, so
                // crossings are common.
                let cx = (t1[0] + t1[3] + t1[6]) / 3.0;
                let cy = (t1[1] + t1[4] + t1[7]) / 3.0;
                let cz = (t1[2] + t1[5] + t1[8]) / 3.0;
                let center = [cx, cy, cz];
                for v in 0..3 {
                    for c in 0..3 {
                        t2[v * 3 + c] = center[c] + rng.gen_range(-0.6..0.6);
                    }
                }
            } else {
                // Independent pair shifted by a random offset: mostly apart.
                let spread: f64 = rng.gen_range(0.05..1.2);
                let offset: Vec3 = std::array::from_fn(|_| rng.gen_range(-spread..spread));
                for v in 0..3 {
                    for c in 0..3 {
                        t2[v * 3 + c] = rng.gen_range(0.0..1.0) * 0.8 + offset[c];
                    }
                }
            }
            flat.extend_from_slice(&t1);
            flat.extend_from_slice(&t2);
        }
        flat
    }
}

fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: Vec3, b: Vec3) -> Vec3 {
    [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
}

fn dot(a: Vec3, b: Vec3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Computes the parametric interval of triangle `(v0, v1, v2)` along the
/// intersection line, given projections `p` and signed plane distances `d`.
/// Returns `None` when the vertex distances do not straddle the plane in the
/// expected configuration (handled by the caller's sign analysis).
fn interval(p: Vec3, d: Vec3) -> Option<(f64, f64)> {
    // Rotate vertices so v0 is the lone vertex on its side of the plane.
    let (pa, pb, pc, da, db, dc) = if d[0] * d[1] > 0.0 {
        (p[2], p[0], p[1], d[2], d[0], d[1])
    } else if d[0] * d[2] > 0.0 {
        (p[1], p[0], p[2], d[1], d[0], d[2])
    } else if d[1] * d[2] > 0.0 || d[0] != 0.0 {
        (p[0], p[1], p[2], d[0], d[1], d[2])
    } else if d[1] != 0.0 {
        (p[1], p[0], p[2], d[1], d[0], d[2])
    } else if d[2] != 0.0 {
        (p[2], p[0], p[1], d[2], d[0], d[1])
    } else {
        return None; // coplanar
    };
    let t1 = pa + (pb - pa) * da / (da - db);
    let t2 = pa + (pc - pa) * da / (da - dc);
    Some((t1.min(t2), t1.max(t2)))
}

/// Möller's triangle-triangle intersection test.
///
/// Coplanar pairs are resolved with a 2-D edge/containment test in the
/// triangles' dominant plane.
#[must_use]
pub fn tri_tri_intersect(t1: &[f64; 9], t2: &[f64; 9]) -> bool {
    let v: [Vec3; 3] = [[t1[0], t1[1], t1[2]], [t1[3], t1[4], t1[5]], [t1[6], t1[7], t1[8]]];
    let u: [Vec3; 3] = [[t2[0], t2[1], t2[2]], [t2[3], t2[4], t2[5]], [t2[6], t2[7], t2[8]]];

    // Plane of T2: n2 · x + d2 = 0.
    let n2 = cross(sub(u[1], u[0]), sub(u[2], u[0]));
    let d2 = -dot(n2, u[0]);
    let mut dv: Vec3 = std::array::from_fn(|i| dot(n2, v[i]) + d2);
    for d in &mut dv {
        if d.abs() < EPS {
            *d = 0.0;
        }
    }
    if dv[0] * dv[1] > 0.0 && dv[0] * dv[2] > 0.0 {
        return false; // T1 entirely on one side of T2's plane
    }

    // Plane of T1.
    let n1 = cross(sub(v[1], v[0]), sub(v[2], v[0]));
    let d1 = -dot(n1, v[0]);
    let mut du: Vec3 = std::array::from_fn(|i| dot(n1, u[i]) + d1);
    for d in &mut du {
        if d.abs() < EPS {
            *d = 0.0;
        }
    }
    if du[0] * du[1] > 0.0 && du[0] * du[2] > 0.0 {
        return false;
    }

    // Direction of the intersection line; project onto its largest axis.
    let dir = cross(n1, n2);
    let axis = {
        let a = [dir[0].abs(), dir[1].abs(), dir[2].abs()];
        if a[0] >= a[1] && a[0] >= a[2] {
            0
        } else if a[1] >= a[2] {
            1
        } else {
            2
        }
    };

    if dv == [0.0; 3] && du == [0.0; 3] {
        return coplanar_intersect(&v, &u, n1);
    }

    let pv: Vec3 = std::array::from_fn(|i| v[i][axis]);
    let pu: Vec3 = std::array::from_fn(|i| u[i][axis]);
    let (Some((a1, b1)), Some((a2, b2))) = (interval(pv, dv), interval(pu, du)) else {
        return coplanar_intersect(&v, &u, n1);
    };
    a1.max(a2) <= b1.min(b2)
}

/// 2-D overlap test for coplanar triangles, projected onto the plane's
/// dominant axis pair.
fn coplanar_intersect(v: &[Vec3; 3], u: &[Vec3; 3], n: Vec3) -> bool {
    let (i, j) = {
        let a = [n[0].abs(), n[1].abs(), n[2].abs()];
        if a[0] >= a[1] && a[0] >= a[2] {
            (1, 2)
        } else if a[1] >= a[2] {
            (0, 2)
        } else {
            (0, 1)
        }
    };
    let p1: [[f64; 2]; 3] = std::array::from_fn(|k| [v[k][i], v[k][j]]);
    let p2: [[f64; 2]; 3] = std::array::from_fn(|k| [u[k][i], u[k][j]]);

    for a in 0..3 {
        for b in 0..3 {
            if segments_intersect(p1[a], p1[(a + 1) % 3], p2[b], p2[(b + 1) % 3]) {
                return true;
            }
        }
    }
    point_in_tri(p1[0], &p2) || point_in_tri(p2[0], &p1)
}

fn orient(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

fn segments_intersect(a: [f64; 2], b: [f64; 2], c: [f64; 2], d: [f64; 2]) -> bool {
    let d1 = orient(c, d, a);
    let d2 = orient(c, d, b);
    let d3 = orient(a, b, c);
    let d4 = orient(a, b, d);
    d1 * d2 <= 0.0 && d3 * d4 <= 0.0
}

fn point_in_tri(p: [f64; 2], t: &[[f64; 2]; 3]) -> bool {
    let s1 = orient(t[0], t[1], p);
    let s2 = orient(t[1], t[2], p);
    let s3 = orient(t[2], t[0], p);
    (s1 >= 0.0 && s2 >= 0.0 && s3 >= 0.0) || (s1 <= 0.0 && s2 <= 0.0 && s3 <= 0.0)
}

impl Kernel for Jmeint {
    fn name(&self) -> &'static str {
        "jmeint"
    }

    fn domain(&self) -> &'static str {
        "3D Gaming"
    }

    fn input_dim(&self) -> usize {
        18
    }

    fn output_dim(&self) -> usize {
        2
    }

    fn compute(&self, input: &[f64], output: &mut [f64]) {
        let t1: [f64; 9] = input[0..9].try_into().expect("checked width");
        let t2: [f64; 9] = input[9..18].try_into().expect("checked width");
        let hit = tri_tri_intersect(&t1, &t2);
        // One-hot class scores: index 0 = intersecting.
        output[0] = if hit { 1.0 } else { 0.0 };
        output[1] = if hit { 0.0 } else { 1.0 };
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::MissRate
    }

    fn rumba_topology(&self) -> Vec<usize> {
        vec![18, 32, 2, 2]
    }

    fn npu_topology(&self) -> Vec<usize> {
        vec![18, 32, 8, 2]
    }

    fn generate(&self, split: Split, seed: u64) -> NnDataset {
        let (n, salt) = match split {
            Split::Train => (TRAIN_N, 0x7777),
            Split::Test => (TEST_N, 0x8888),
        };
        dataset_from_inputs(self, &Self::sample_inputs(n, seed ^ salt))
    }

    fn cpu_cycles(&self) -> f64 {
        // Two plane tests, cross/dot products, interval arithmetic, branches.
        1_450.0
    }

    fn kernel_fraction(&self) -> f64 {
        0.9
    }

    fn train_data_desc(&self) -> &'static str {
        "10K pairs of 3D triangles"
    }

    fn test_data_desc(&self) -> &'static str {
        "10K pairs of 3D triangles"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_XY: [f64; 9] = [0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0];

    #[test]
    fn piercing_triangles_intersect() {
        let t2 = [0.2, 0.2, -0.5, 0.2, 0.2, 0.5, 0.8, 0.8, 0.0];
        assert!(tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn far_triangles_do_not_intersect() {
        let t2 = [5.0, 5.0, 5.0, 6.0, 5.0, 5.0, 5.0, 6.0, 5.0];
        assert!(!tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn parallel_offset_planes_do_not_intersect() {
        let t2 = [0.0, 0.0, 0.1, 1.0, 0.0, 0.1, 0.0, 1.0, 0.1];
        assert!(!tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn coplanar_overlapping_intersect() {
        let t2 = [0.1, 0.1, 0.0, 0.9, 0.1, 0.0, 0.1, 0.9, 0.0];
        assert!(tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn coplanar_disjoint_do_not_intersect() {
        let t2 = [2.0, 2.0, 0.0, 3.0, 2.0, 0.0, 2.0, 3.0, 0.0];
        assert!(!tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn coplanar_containment_intersects() {
        let t2 = [0.2, 0.2, 0.0, 0.3, 0.2, 0.0, 0.2, 0.3, 0.0];
        assert!(tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn intersection_is_symmetric() {
        let k = Jmeint::new();
        let data = k.generate(Split::Train, 3);
        for i in (0..data.len()).step_by(211) {
            let x = data.input(i);
            let t1: [f64; 9] = x[0..9].try_into().unwrap();
            let t2: [f64; 9] = x[9..18].try_into().unwrap();
            assert_eq!(tri_tri_intersect(&t1, &t2), tri_tri_intersect(&t2, &t1), "pair {i}");
        }
    }

    #[test]
    fn touching_at_shared_vertex_counts_as_intersecting() {
        let t2 = [1.0, 0.0, 0.0, 2.0, 0.0, 1.0, 2.0, 1.0, 0.5];
        assert!(tri_tri_intersect(&T_XY, &t2));
    }

    #[test]
    fn class_balance_is_reasonable() {
        // Both classes must be well represented for the NN to learn.
        let k = Jmeint::new();
        let data = k.generate(Split::Train, 0);
        let hits = (0..data.len()).filter(|&i| data.target(i)[0] == 1.0).count();
        let rate = hits as f64 / data.len() as f64;
        assert!((0.2..0.8).contains(&rate), "intersection rate {rate}");
    }

    #[test]
    fn dataset_sizes_match_table1() {
        let k = Jmeint::new();
        assert_eq!(k.generate(Split::Train, 0).len(), 10_000);
        assert_eq!(k.generate(Split::Test, 0).len(), 10_000);
    }
}
