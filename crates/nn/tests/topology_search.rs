//! Pins the topology search's bounded speculative training (MAC-sorted
//! waves of one candidate per thread) to the serial walk: the selected
//! model, the candidates report, and the early-exit point must be
//! bit-identical at every thread count.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use proptest::prelude::*;
use rumba_nn::{NnDataset, TopologySearch};

/// Serializes every test that flips the process-wide thread override, so a
/// concurrently scheduled case never observes a mid-run change.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

fn wavy_dataset(n: usize, freq: f64) -> NnDataset {
    NnDataset::from_fn(1, 1, n, |i, x, y| {
        x[0] = i as f64 / n as f64;
        y[0] = (x[0] * freq).sin() * 0.5 + 0.5;
    })
    .unwrap()
}

proptest! {
    /// Selection replay is bit-identical to the serial walk at every
    /// thread count, for caps that early-exit quickly, late, and never.
    #[test]
    fn wave_speculation_matches_serial_selection_bitwise(
        seed in 0u64..200,
        cap_idx in 0usize..3,
        threads in 2usize..5,
    ) {
        let _guard = thread_lock();
        let cap = [0.5, 0.05, 0.0][cap_idx];
        let data = wavy_dataset(96, 7.0);
        let search = TopologySearch::new(cap).with_hidden_sizes(&[1, 2, 4]);

        rumba_parallel::set_thread_override(Some(1));
        let serial = search.run(&data, seed);
        rumba_parallel::set_thread_override(Some(threads));
        let parallel = search.run(&data, seed);
        rumba_parallel::set_thread_override(None);

        let (serial_model, serial_report) = serial.unwrap();
        let (parallel_model, parallel_report) = parallel.unwrap();
        prop_assert_eq!(serial_report.selected, parallel_report.selected);
        prop_assert_eq!(serial_report.candidates.len(), parallel_report.candidates.len());
        for (a, b) in serial_report.candidates.iter().zip(&parallel_report.candidates) {
            prop_assert_eq!(&a.layers, &b.layers);
            prop_assert_eq!(a.validation_error.to_bits(), b.validation_error.to_bits());
            prop_assert_eq!(a.mac_count, b.mac_count);
        }
        let bits = |m: &rumba_nn::TrainedModel| {
            m.mlp().to_flat_params().iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        };
        prop_assert_eq!(bits(&serial_model), bits(&parallel_model));
    }
}

/// An early exit must keep the legacy report shape: the candidate list
/// stops exactly one entry past the winner (the probe that proved no
/// larger candidate can win), regardless of thread count.
#[test]
fn early_exit_report_stops_one_past_the_winner_at_any_thread_count() {
    let _guard = thread_lock();
    let data = wavy_dataset(128, 2.0);
    // A generous cap that the first or second candidate meets.
    let search = TopologySearch::new(0.5).with_hidden_sizes(&[1, 2, 4, 8, 16]);
    let mut shapes = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        rumba_parallel::set_thread_override(Some(threads));
        let (_, report) = search.run(&data, 9).unwrap();
        rumba_parallel::set_thread_override(None);
        assert!(
            report.candidates.len() <= report.selected + 2,
            "threads {threads}: {} candidates for winner {}",
            report.candidates.len(),
            report.selected
        );
        shapes.push((report.selected, report.candidates.len()));
    }
    assert!(shapes.windows(2).all(|w| w[0] == w[1]), "report shape varies by threads: {shapes:?}");
}
