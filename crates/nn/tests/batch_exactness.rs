//! Property tests pinning the batched matrix paths bit-exact against the
//! per-sample reference loops, across random topologies, batch sizes,
//! seeds, quantization grids, and thread counts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::{Activation, Matrix, MatrixView, Mlp, Normalizer, Scratch, TrainedModel};

fn random_inputs(n: usize, dim: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * dim).map(|_| rng.gen_range(-5.0..5.0)).collect()
}

fn topology(in_dim: usize, hidden: &[usize], out_dim: usize) -> Vec<usize> {
    let mut t = vec![in_dim];
    t.extend_from_slice(hidden);
    t.push(out_dim);
    t
}

fn row_bits(row: &[f64]) -> Vec<u64> {
    row.iter().map(|x| x.to_bits()).collect()
}

/// Builds a model whose normalizers were fitted on real value ranges, so
/// the batched staging + inversion paths do nontrivial arithmetic.
fn model_for(topo: &[usize], seed: u64) -> TrainedModel {
    let mlp = Mlp::new(topo, Activation::Sigmoid, seed).unwrap();
    let in_dim = topo[0];
    let out_dim = *topo.last().unwrap();
    let in_rows = random_inputs(16, in_dim, seed ^ 0x11);
    let out_rows = random_inputs(16, out_dim, seed ^ 0x22);
    let input_norm = Normalizer::fit(in_rows.chunks(in_dim), in_dim, 0.0, 1.0);
    let output_norm = Normalizer::fit(out_rows.chunks(out_dim), out_dim, 0.0, 1.0);
    TrainedModel::from_parts(mlp, input_norm, output_norm)
}

proptest! {
    #[test]
    fn forward_batch_matches_per_row_forward_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let mlp = Mlp::new(&topo, Activation::Sigmoid, seed).unwrap();
        let flat = random_inputs(n, in_dim, seed ^ 0xbeef);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = mlp.forward_batch(inputs, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        prop_assert_eq!(out.rows(), n);
        for i in 0..n {
            let serial = mlp.forward(inputs.row(i)).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }

    #[test]
    fn quantized_batch_matches_per_row_quantized_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        bits in 0u32..12,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let mlp = Mlp::new(&topo, Activation::Tanh, seed).unwrap();
        let flat = random_inputs(n, in_dim, seed ^ 0x5151);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = mlp.forward_batch_quantized(inputs, bits, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        for i in 0..n {
            let serial = mlp.forward_quantized(inputs.row(i), bits).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }

    #[test]
    fn predict_batch_matches_per_row_predict_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let model = model_for(&topo, seed);
        let flat = random_inputs(n, in_dim, seed ^ 0x77);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = model.predict_batch(inputs, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        for i in 0..n {
            let serial = model.predict(inputs.row(i)).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }

    #[test]
    fn quantized_predict_batch_matches_per_row_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..32,
        seed in 0u64..1_000,
        bits in 0u32..12,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let model = model_for(&topo, seed);
        let flat = random_inputs(n, in_dim, seed ^ 0x99);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = model.predict_batch_quantized(inputs, bits, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        for i in 0..n {
            let serial = model.predict_quantized(inputs.row(i), bits).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }
}

#[test]
fn batch_apis_reject_wrong_width() {
    let mlp = Mlp::new(&[3, 4, 2], Activation::Sigmoid, 1).unwrap();
    let flat = vec![0.0; 8];
    let inputs = MatrixView::new(&flat, 4, 2);
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    assert!(mlp.forward_batch(inputs, &mut scratch, &mut out).is_err());
    let model = model_for(&[3, 4, 2], 1);
    assert!(model.predict_batch(inputs, &mut scratch, &mut out).is_err());
}

#[test]
fn reused_scratch_survives_shape_changes() {
    // Shrinking then growing the batch must stay correct (grow-only
    // buffers are an internal detail, not a correctness hazard).
    let mlp = Mlp::new(&[2, 5, 1], Activation::Sigmoid, 3).unwrap();
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    for &n in &[64usize, 1, 17, 64, 0, 33] {
        let flat = random_inputs(n, 2, n as u64);
        let inputs = MatrixView::new(&flat, n, 2);
        mlp.forward_batch(inputs, &mut scratch, &mut out).unwrap();
        assert_eq!(out.rows(), n);
        for i in 0..n {
            let serial = mlp.forward(inputs.row(i)).unwrap();
            assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }
}
