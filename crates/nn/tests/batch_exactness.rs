//! Property tests pinning the batched matrix paths bit-exact against the
//! per-sample reference loops, across random topologies, batch sizes,
//! seeds, quantization grids, and thread counts.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_nn::{Activation, Matrix, MatrixView, Mlp, Normalizer, Scratch, SimdMode, TrainedModel};

/// Serializes every test that flips the process-wide SIMD override, so a
/// concurrently scheduled case never observes a mid-run mode change.
fn simd_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

fn random_inputs(n: usize, dim: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * dim).map(|_| rng.gen_range(-5.0..5.0)).collect()
}

fn topology(in_dim: usize, hidden: &[usize], out_dim: usize) -> Vec<usize> {
    let mut t = vec![in_dim];
    t.extend_from_slice(hidden);
    t.push(out_dim);
    t
}

fn row_bits(row: &[f64]) -> Vec<u64> {
    row.iter().map(|x| x.to_bits()).collect()
}

/// Builds a model whose normalizers were fitted on real value ranges, so
/// the batched staging + inversion paths do nontrivial arithmetic.
fn model_for(topo: &[usize], seed: u64) -> TrainedModel {
    let mlp = Mlp::new(topo, Activation::Sigmoid, seed).unwrap();
    let in_dim = topo[0];
    let out_dim = *topo.last().unwrap();
    let in_rows = random_inputs(16, in_dim, seed ^ 0x11);
    let out_rows = random_inputs(16, out_dim, seed ^ 0x22);
    let input_norm = Normalizer::fit(in_rows.chunks(in_dim), in_dim, 0.0, 1.0);
    let output_norm = Normalizer::fit(out_rows.chunks(out_dim), out_dim, 0.0, 1.0);
    TrainedModel::from_parts(mlp, input_norm, output_norm)
}

proptest! {
    #[test]
    fn forward_batch_matches_per_row_forward_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let mlp = Mlp::new(&topo, Activation::Sigmoid, seed).unwrap();
        let flat = random_inputs(n, in_dim, seed ^ 0xbeef);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = mlp.forward_batch(inputs, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        prop_assert_eq!(out.rows(), n);
        for i in 0..n {
            let serial = mlp.forward(inputs.row(i)).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }

    #[test]
    fn quantized_batch_matches_per_row_quantized_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        bits in 0u32..12,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let mlp = Mlp::new(&topo, Activation::Tanh, seed).unwrap();
        let flat = random_inputs(n, in_dim, seed ^ 0x5151);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = mlp.forward_batch_quantized(inputs, bits, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        for i in 0..n {
            let serial = mlp.forward_quantized(inputs.row(i), bits).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }

    #[test]
    fn predict_batch_matches_per_row_predict_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let model = model_for(&topo, seed);
        let flat = random_inputs(n, in_dim, seed ^ 0x77);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = model.predict_batch(inputs, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        for i in 0..n {
            let serial = model.predict(inputs.row(i)).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }

    #[test]
    fn quantized_predict_batch_matches_per_row_bitwise(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..32,
        seed in 0u64..1_000,
        bits in 0u32..12,
        threads in 1usize..5,
    ) {
        let topo = topology(in_dim, &hidden, out_dim);
        let model = model_for(&topo, seed);
        let flat = random_inputs(n, in_dim, seed ^ 0x99);
        let inputs = MatrixView::new(&flat, n, in_dim);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_parallel::set_thread_override(Some(threads));
        let result = model.predict_batch_quantized(inputs, bits, &mut scratch, &mut out);
        rumba_parallel::set_thread_override(None);
        result.unwrap();
        for i in 0..n {
            let serial = model.predict_quantized(inputs.row(i), bits).unwrap();
            prop_assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }
}

/// Independent reference for the fixed-point datapath, built from the
/// model's public accessors: Q-format `i16` weights/activations at scale
/// `2^frac_bits`, `i32` biases at the squared scale, wrapping `i32`
/// accumulation, activation through `f64`. Any divergence between the
/// shipped kernels (scalar or SIMD) and this loop is a bug.
fn reference_fixed_predict(model: &TrainedModel, frac_bits: u32, input: &[f64]) -> Vec<f64> {
    let s = f64::from(1u32 << frac_bits.clamp(1, 14));
    let q16 = |v: f64| (v * s).round() as i16;
    let q32 = |v: f64| (v * s * s).round() as i32;
    let mut x = input.to_vec();
    model.input_norm().apply(&mut x);
    let mut act: Vec<i16> = x.iter().map(|&v| q16(v)).collect();
    let layers = model.mlp().layers();
    let last = layers.len() - 1;
    let mut out = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        let (ind, outd) = (layer.in_dim(), layer.out_dim());
        let mut next = vec![0i16; outd];
        for (o, slot) in next.iter_mut().enumerate() {
            let mut acc = q32(layer.biases()[o]);
            for (k, &a) in act.iter().enumerate().take(ind) {
                let w = i32::from(q16(layer.weights()[o * ind + k]));
                acc = acc.wrapping_add(w.wrapping_mul(i32::from(a)));
            }
            let v = layer.activation().apply(f64::from(acc) / (s * s));
            if li == last {
                out.push(v);
            } else {
                *slot = q16(v);
            }
        }
        act = next;
    }
    model.output_norm().invert(&mut out);
    out
}

/// Independent reference for the f64 quantized forward, written the way
/// the pre-hoist kernel computed it — quantization scale re-derived at
/// every element. Pins the hoisted per-layer `q(w)`/`q(b)` tables to the
/// original per-element semantics bit for bit.
fn reference_quantized_forward(mlp: &Mlp, bits: u32, input: &[f64]) -> Vec<f64> {
    let mut x = input.to_vec();
    for layer in mlp.layers() {
        let (ind, outd) = (layer.in_dim(), layer.out_dim());
        let mut next = vec![0.0; outd];
        for (o, slot) in next.iter_mut().enumerate() {
            let scale = f64::from(1u32 << bits.min(30));
            let mut acc = (layer.biases()[o] * scale).round() / scale;
            for (k, &xv) in x.iter().enumerate().take(ind) {
                let scale = f64::from(1u32 << bits.min(30));
                let w = (layer.weights()[o * ind + k] * scale).round() / scale;
                acc += w * xv;
            }
            let scale = f64::from(1u32 << bits.min(30));
            *slot = (layer.activation().apply(acc) * scale).round() / scale;
        }
        x = next;
    }
    x
}

proptest! {
    /// Tentpole contract: forcing the vector kernels and forcing the
    /// scalar kernels produce bitwise-identical batches across random
    /// topologies, ragged tail sizes (n % lane-width != 0), the 32-row
    /// tile boundary, and 1/4 worker threads — and both match the
    /// per-row serial loop.
    #[test]
    fn forward_batch_is_simd_invariant(
        in_dim in 1usize..6,
        hidden in proptest::collection::vec(1usize..9, 1..3),
        out_dim in 1usize..5,
        n in 0usize..70,
        seed in 0u64..1_000,
        threads_idx in 0usize..2,
    ) {
        let _guard = simd_lock();
        let threads = [1usize, 4][threads_idx];
        let topo = topology(in_dim, &hidden, out_dim);
        let mlp = Mlp::new(&topo, Activation::Sigmoid, seed).unwrap();
        let flat = random_inputs(n, in_dim, seed ^ 0xabcd);
        let inputs = MatrixView::new(&flat, n, in_dim);
        rumba_parallel::set_thread_override(Some(threads));
        let mut per_mode = Vec::new();
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_nn::set_simd_override(Some(mode));
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            mlp.forward_batch(inputs, &mut scratch, &mut out).unwrap();
            per_mode.push(out);
        }
        rumba_nn::set_simd_override(None);
        rumba_parallel::set_thread_override(None);
        let (off, on) = (&per_mode[0], &per_mode[1]);
        for i in 0..n {
            prop_assert_eq!(row_bits(off.row(i)), row_bits(on.row(i)));
            let serial = mlp.forward(inputs.row(i)).unwrap();
            prop_assert_eq!(row_bits(on.row(i)), row_bits(&serial));
        }
    }

    /// The same contract for the f64 quantized path, which additionally
    /// pins the hoisted per-layer quantized-parameter tables against a
    /// reference that re-derives the scale per element (the pre-hoist
    /// code shape).
    #[test]
    fn quantized_batch_is_simd_invariant_and_matches_prehoist_reference(
        in_dim in 1usize..6,
        hidden in proptest::collection::vec(1usize..9, 1..3),
        out_dim in 1usize..5,
        n in 0usize..70,
        seed in 0u64..1_000,
        bits in 0u32..12,
        threads_idx in 0usize..2,
    ) {
        let _guard = simd_lock();
        let threads = [1usize, 4][threads_idx];
        let topo = topology(in_dim, &hidden, out_dim);
        let mlp = Mlp::new(&topo, Activation::Tanh, seed).unwrap();
        let flat = random_inputs(n, in_dim, seed ^ 0x1177);
        let inputs = MatrixView::new(&flat, n, in_dim);
        rumba_parallel::set_thread_override(Some(threads));
        let mut per_mode = Vec::new();
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_nn::set_simd_override(Some(mode));
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            mlp.forward_batch_quantized(inputs, bits, &mut scratch, &mut out).unwrap();
            per_mode.push(out);
        }
        rumba_nn::set_simd_override(None);
        rumba_parallel::set_thread_override(None);
        let (off, on) = (&per_mode[0], &per_mode[1]);
        for i in 0..n {
            prop_assert_eq!(row_bits(off.row(i)), row_bits(on.row(i)));
            let reference = reference_quantized_forward(&mlp, bits, inputs.row(i));
            prop_assert_eq!(row_bits(on.row(i)), row_bits(&reference));
        }
    }

    /// End-to-end SIMD invariance for the full model path (normalizers,
    /// staging, inversion), at 1 and 4 worker threads.
    #[test]
    fn predict_batch_is_simd_invariant(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        threads_idx in 0usize..2,
    ) {
        let _guard = simd_lock();
        let threads = [1usize, 4][threads_idx];
        let topo = topology(in_dim, &hidden, out_dim);
        let model = model_for(&topo, seed);
        let flat = random_inputs(n, in_dim, seed ^ 0x3344);
        let inputs = MatrixView::new(&flat, n, in_dim);
        rumba_parallel::set_thread_override(Some(threads));
        let mut per_mode = Vec::new();
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_nn::set_simd_override(Some(mode));
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            model.predict_batch(inputs, &mut scratch, &mut out).unwrap();
            per_mode.push(out);
        }
        rumba_nn::set_simd_override(None);
        rumba_parallel::set_thread_override(None);
        for i in 0..n {
            prop_assert_eq!(row_bits(per_mode[0].row(i)), row_bits(per_mode[1].row(i)));
        }
    }

    /// The i16/i32 fixed-point path, pinned against the independent
    /// integer reference loop above — serial, batched, scalar, SIMD, and
    /// 1/4 threads all bit-identical.
    #[test]
    fn fixed_point_batch_matches_reference_integer_loop(
        in_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..7, 1..3),
        out_dim in 1usize..4,
        n in 0usize..48,
        seed in 0u64..1_000,
        frac_bits in 0u32..16,
        threads_idx in 0usize..2,
    ) {
        let _guard = simd_lock();
        let threads = [1usize, 4][threads_idx];
        let topo = topology(in_dim, &hidden, out_dim);
        let model = model_for(&topo, seed);
        let fixed = model.prepare_fixed(frac_bits);
        let flat = random_inputs(n, in_dim, seed ^ 0x5566);
        let inputs = MatrixView::new(&flat, n, in_dim);
        rumba_parallel::set_thread_override(Some(threads));
        let mut per_mode = Vec::new();
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_nn::set_simd_override(Some(mode));
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            fixed.predict_batch(inputs, &mut scratch, &mut out).unwrap();
            per_mode.push(out);
        }
        rumba_nn::set_simd_override(None);
        rumba_parallel::set_thread_override(None);
        for i in 0..n {
            prop_assert_eq!(row_bits(per_mode[0].row(i)), row_bits(per_mode[1].row(i)));
            let serial = fixed.predict(inputs.row(i)).unwrap();
            prop_assert_eq!(row_bits(per_mode[1].row(i)), row_bits(&serial));
            let reference = reference_fixed_predict(&model, frac_bits, inputs.row(i));
            prop_assert_eq!(row_bits(&serial), row_bits(&reference));
        }
    }
}

/// Deterministic regression for the hoisted quantization scale: the
/// batched quantized path must reproduce the per-element re-derivation
/// semantics exactly, including at the widths where rounding actually
/// bites (low bit counts).
#[test]
fn quantized_hoist_is_bitwise_identical_to_per_element_rederivation() {
    let _guard = simd_lock();
    let mlp = Mlp::new(&[3, 9, 5, 2], Activation::Sigmoid, 71).unwrap();
    let flat = random_inputs(37, 3, 0xfeed);
    let inputs = MatrixView::new(&flat, 37, 3);
    for bits in [0u32, 1, 2, 4, 8, 16, 31] {
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_nn::set_simd_override(Some(mode));
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            mlp.forward_batch_quantized(inputs, bits, &mut scratch, &mut out).unwrap();
            for i in 0..37 {
                let reference = reference_quantized_forward(&mlp, bits, inputs.row(i));
                assert_eq!(
                    row_bits(out.row(i)),
                    row_bits(&reference),
                    "bits {bits} mode {mode:?} row {i}"
                );
            }
        }
    }
    rumba_nn::set_simd_override(None);
}

#[test]
fn batch_apis_reject_wrong_width() {
    let mlp = Mlp::new(&[3, 4, 2], Activation::Sigmoid, 1).unwrap();
    let flat = vec![0.0; 8];
    let inputs = MatrixView::new(&flat, 4, 2);
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    assert!(mlp.forward_batch(inputs, &mut scratch, &mut out).is_err());
    let model = model_for(&[3, 4, 2], 1);
    assert!(model.predict_batch(inputs, &mut scratch, &mut out).is_err());
}

#[test]
fn reused_scratch_survives_shape_changes() {
    // Shrinking then growing the batch must stay correct (grow-only
    // buffers are an internal detail, not a correctness hazard).
    let mlp = Mlp::new(&[2, 5, 1], Activation::Sigmoid, 3).unwrap();
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    for &n in &[64usize, 1, 17, 64, 0, 33] {
        let flat = random_inputs(n, 2, n as u64);
        let inputs = MatrixView::new(&flat, n, 2);
        mlp.forward_batch(inputs, &mut scratch, &mut out).unwrap();
        assert_eq!(out.rows(), n);
        for i in 0..n {
            let serial = mlp.forward(inputs.row(i)).unwrap();
            assert_eq!(row_bits(out.row(i)), row_bits(&serial));
        }
    }
}
