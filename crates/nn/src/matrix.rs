//! Contiguous row-major matrices and reusable scratch workspaces.
//!
//! Every batched path in the workspace (forward, quantized forward,
//! training, NPU invocation) moves rows through these types instead of
//! `Vec<Vec<f64>>`: one flat allocation per matrix, grow-only resizing, and
//! borrowed views so callers can hand out sub-ranges of rows without
//! copying. Together with [`Scratch`] this gives the hot path a
//! zero-allocation steady state — after the first call at a given shape,
//! repeated batched invocations perform no heap allocation at all.

/// An owned row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use rumba_nn::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m.row_mut(1)[2] = 5.0;
/// assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
/// assert_eq!(m.as_slice().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Wraps an existing flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length must be rows * cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reshapes to `rows × cols`, zero-filling new elements. The backing
    /// `Vec`'s capacity only ever grows, so once a workspace has seen its
    /// peak shape, further resizes allocate nothing.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[must_use]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole buffer, row-major, mutable.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A borrowed view of the whole matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView { rows: self.rows, cols: self.cols, data: &self.data }
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    #[must_use]
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }
}

/// A borrowed row-major view over `rows × cols` elements.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Views a flat row-major slice as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn new(data: &'a [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "view length must be rows * cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying flat buffer.
    #[must_use]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// A sub-view covering rows `start..end` (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the view.
    #[must_use]
    pub fn rows_range(&self, start: usize, end: usize) -> MatrixView<'a> {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        MatrixView {
            rows: end - start,
            cols: self.cols,
            data: &self.data[start * self.cols..end * self.cols],
        }
    }
}

/// A mutable borrowed row-major view.
#[derive(Debug)]
pub struct MatrixViewMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f64],
}

impl<'a> MatrixViewMut<'a> {
    /// Views a flat row-major slice as a mutable matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "view length must be rows * cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a mutable slice.
    #[must_use]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying flat buffer, mutable.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data
    }
}

/// Lane workspace for the SIMD batched kernels: the transpose-packed input
/// tile, the per-neuron padded accumulator row, and the hoisted
/// (pre-quantized) per-layer weight/bias copies of the quantized path. All
/// grow-only `Vec`s, preserving the zero-allocation steady state.
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneScratch {
    /// Transpose-packed input tile: `in_dim` features × `rp` padded rows,
    /// feature-major so each feature's row axis is contiguous (the SIMD
    /// load axis).
    pub(crate) xt: Vec<f64>,
    /// One output neuron's accumulators across the padded tile rows.
    pub(crate) yt: Vec<f64>,
    /// Per-layer hoisted quantized weights (the quantization grid is a
    /// pure per-element function, so hoisting is bit-identical to the old
    /// per-element rounding in the inner loop — just not redundant).
    pub(crate) qw: Vec<f64>,
    /// Per-layer hoisted quantized biases.
    pub(crate) qb: Vec<f64>,
}

/// Integer workspace for the fixed-point forward path: ping-pong i16
/// activation buffers (grow-only, like everything else here).
#[derive(Debug, Clone, Default)]
pub(crate) struct FixedScratch {
    pub(crate) qa: Vec<i16>,
    pub(crate) qb: Vec<i16>,
}

/// Reusable workspace for the batched forward/predict paths.
///
/// Holds the ping-pong activation buffers (`a`/`b`) the layer loop
/// alternates between, a staging buffer for normalized inputs, the SIMD
/// lane workspace, and the fixed-point integer buffers. All are grow-only,
/// so a `Scratch` reused across calls reaches a zero-allocation steady
/// state after the first call at the largest batch shape.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pub(crate) a: Matrix,
    pub(crate) b: Matrix,
    pub(crate) staged: Matrix,
    pub(crate) lanes: LaneScratch,
    pub(crate) fixed: FixedScratch,
}

impl Scratch {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_rows() {
        let m = Matrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(2), &[0.0, 0.0]);
        assert!(!m.is_empty());
        assert!(Matrix::default().is_empty());
    }

    #[test]
    fn from_flat_round_trips() {
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.into_flat(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn from_flat_checks_length() {
        let _ = Matrix::from_flat(2, 2, vec![1.0]);
    }

    #[test]
    fn resize_is_grow_only_in_capacity() {
        let mut m = Matrix::zeros(8, 8);
        let cap = m.data.capacity();
        m.resize(2, 2);
        m.resize(8, 8);
        assert_eq!(m.data.capacity(), cap, "shrinking then regrowing must not reallocate");
        assert_eq!(m.as_slice().len(), 64);
    }

    #[test]
    fn views_window_rows() {
        let m = Matrix::from_flat(4, 2, (0..8).map(f64::from).collect());
        let v = m.view();
        assert_eq!(v.row(3), &[6.0, 7.0]);
        let sub = v.rows_range(1, 3);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0), &[2.0, 3.0]);
        assert_eq!(sub.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut data = vec![0.0; 4];
        let mut v = MatrixViewMut::new(&mut data, 2, 2);
        v.row_mut(1)[0] = 9.0;
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 2);
        assert_eq!(data, vec![0.0, 0.0, 9.0, 0.0]);
    }
}
