use crate::{
    Activation, Matrix, MatrixView, Mlp, NnDataset, NnError, Normalizer, Result, Scratch,
    TrainParams, TrainReport, Trainer,
};

/// A trained network bundled with the input/output normalizers fitted on its
/// training data, so callers evaluate it in *application units*.
///
/// This is the artifact the offline "accelerator trainer" produces and the
/// accelerator model consumes.
///
/// # Examples
///
/// ```
/// use rumba_nn::{Activation, NnDataset, TrainedModel, TrainParams};
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// let data = NnDataset::from_fn(1, 1, 128, |i, x, y| {
///     x[0] = i as f64; // raw units, not normalized
///     y[0] = 3.0 * x[0] + 40.0;
/// })?;
/// let model = TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data,
///                               &TrainParams::default(), 5)?;
/// let out = model.predict(&[64.0])?;
/// assert!((out[0] - (3.0 * 64.0 + 40.0)).abs() < 15.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    mlp: Mlp,
    input_norm: Normalizer,
    output_norm: Normalizer,
    train_loss: f64,
}

impl TrainedModel {
    /// Fits normalizers on `data`, trains a fresh network of the given
    /// topology on the normalized data, and bundles the result.
    ///
    /// # Errors
    ///
    /// Propagates construction and training errors from [`Mlp::new`] and
    /// [`Trainer::train`].
    pub fn fit(
        topology: &[usize],
        hidden_act: Activation,
        data: &NnDataset,
        params: &TrainParams,
        seed: u64,
    ) -> Result<Self> {
        let (model, _report) = Self::fit_with_report(topology, hidden_act, data, params, seed)?;
        Ok(model)
    }

    /// Like [`TrainedModel::fit`] but also returns the training report.
    ///
    /// # Errors
    ///
    /// Propagates construction and training errors from [`Mlp::new`] and
    /// [`Trainer::train`].
    pub fn fit_with_report(
        topology: &[usize],
        hidden_act: Activation,
        data: &NnDataset,
        params: &TrainParams,
        seed: u64,
    ) -> Result<(Self, TrainReport)> {
        let input_norm =
            Normalizer::fit((0..data.len()).map(|i| data.input(i)), data.input_dim(), 0.0, 1.0);
        let output_norm =
            Normalizer::fit((0..data.len()).map(|i| data.target(i)), data.output_dim(), 0.0, 1.0);
        let scaled = Normalizer::normalize_dataset(&input_norm, &output_norm, data);
        let mut mlp = Mlp::new(topology, hidden_act, seed)?;
        let report = Trainer::new(params.clone()).train(&mut mlp, &scaled)?;
        let train_loss = report.final_loss();
        Ok((Self { mlp, input_norm, output_norm, train_loss }, report))
    }

    /// Evaluates the model in application units.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] if `input` has the wrong
    /// width.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>> {
        let mut x = input.to_vec();
        self.input_norm.apply(&mut x);
        let mut y = self.mlp.forward(&x)?;
        self.output_norm.invert(&mut y);
        Ok(y)
    }

    /// Evaluates the model on many input rows in application units through
    /// the cache-blocked batched kernel, fanning row chunks out over the
    /// deterministic pool. Each row's result is bit-identical to
    /// [`TrainedModel::predict`] — at any thread count — and with a reused
    /// `scratch`/`out` pair the single-thread path allocates nothing in
    /// steady state.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] if `inputs` has the
    /// wrong width.
    pub fn predict_batch(
        &self,
        inputs: MatrixView<'_>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        self.predict_batch_with(inputs, None, scratch, out)
    }

    /// Batched counterpart of [`TrainedModel::predict_quantized`];
    /// bit-identical to the per-row quantized path.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] if `inputs` has the
    /// wrong width.
    pub fn predict_batch_quantized(
        &self,
        inputs: MatrixView<'_>,
        bits: u32,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        self.predict_batch_with(inputs, Some(bits), scratch, out)
    }

    fn predict_batch_with(
        &self,
        inputs: MatrixView<'_>,
        quant: Option<u32>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        if inputs.cols() != self.mlp.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.mlp.input_dim(),
                actual: inputs.cols(),
                port: "network input",
            });
        }
        let n = inputs.rows();
        out.resize(n, self.mlp.output_dim());
        let pool = rumba_parallel::ThreadPool::new();
        if pool.threads() <= 1 {
            self.predict_rows_into(inputs, quant, scratch, out.as_mut_slice());
        } else {
            let out_dim = self.mlp.output_dim();
            pool.par_chunks_mut(out.as_mut_slice(), out_dim, |_c, range, chunk_out| {
                let mut local = Scratch::new();
                let sub = inputs.rows_range(range.start, range.end);
                self.predict_rows_into(sub, quant, &mut local, chunk_out);
            });
        }
        Ok(())
    }

    /// Serial batched predict: stage normalized inputs, run the blocked
    /// forward, invert the output normalizer in place. Per row this is the
    /// exact arithmetic of [`TrainedModel::predict`].
    fn predict_rows_into(
        &self,
        inputs: MatrixView<'_>,
        quant: Option<u32>,
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        let n = inputs.rows();
        let Scratch { a, b, staged, lanes, .. } = scratch;
        staged.resize(n, inputs.cols());
        staged.as_mut_slice().copy_from_slice(inputs.as_slice());
        for r in 0..n {
            self.input_norm.apply(staged.row_mut(r));
        }
        self.mlp.forward_rows_flat(n, staged.as_slice(), quant, a, b, lanes, out);
        let out_dim = self.mlp.output_dim();
        for row in out.chunks_mut(out_dim) {
            self.output_norm.invert(row);
        }
    }

    /// Rebuilds a model from its components (the config-stream decoder's
    /// constructor; training loss is not part of the wire format and reads
    /// as zero on the reconstructed model).
    #[must_use]
    pub fn from_parts(mlp: Mlp, input_norm: Normalizer, output_norm: Normalizer) -> Self {
        Self { mlp, input_norm, output_norm, train_loss: 0.0 }
    }

    /// Evaluates the model on a limited-precision datapath (see
    /// [`Mlp::forward_quantized`]) in application units.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] if `input` has the
    /// wrong width.
    pub fn predict_quantized(&self, input: &[f64], bits: u32) -> Result<Vec<f64>> {
        let mut x = input.to_vec();
        self.input_norm.apply(&mut x);
        let mut y = self.mlp.forward_quantized(&x, bits)?;
        self.output_norm.invert(&mut y);
        Ok(y)
    }

    /// The underlying network.
    #[must_use]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Normalizer applied to inputs before the network sees them.
    #[must_use]
    pub fn input_norm(&self) -> &Normalizer {
        &self.input_norm
    }

    /// Normalizer inverted on network outputs.
    #[must_use]
    pub fn output_norm(&self) -> &Normalizer {
        &self.output_norm
    }

    /// Final normalized-space training loss.
    #[must_use]
    pub fn train_loss(&self) -> f64 {
        self.train_loss
    }

    /// Mean relative error of the model over a dataset in application units,
    /// with relative error per element defined as
    /// `|approx - exact| / max(|exact|, eps)` and `eps = 0.01` guarding tiny
    /// denominators.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `data` does not match the model.
    pub fn mean_relative_error(&self, data: &NnDataset) -> Result<f64> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (x, y) in data.iter() {
            let approx = self.predict(x)?;
            for (a, e) in approx.iter().zip(y) {
                total += (a - e).abs() / e.abs().max(0.01);
                count += 1;
            }
        }
        Ok(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> NnDataset {
        NnDataset::from_fn(1, 1, 200, |i, x, y| {
            x[0] = i as f64 * 0.5;
            y[0] = 200.0 - x[0];
        })
        .unwrap()
    }

    #[test]
    fn fits_a_raw_units_line() {
        let data = line_data();
        let model =
            TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap();
        let out = model.predict(&[50.0]).unwrap()[0];
        assert!((out - 150.0).abs() < 7.5, "predicted {out}");
    }

    #[test]
    fn mean_relative_error_is_small_on_train_set() {
        let data = line_data();
        let model =
            TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap();
        let mre = model.mean_relative_error(&data).unwrap();
        assert!(mre < 0.1, "mre {mre}");
    }

    #[test]
    fn empty_dataset_has_zero_error() {
        let data = line_data();
        let model =
            TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap();
        let empty = NnDataset::new(1, 1).unwrap();
        assert_eq!(model.mean_relative_error(&empty).unwrap(), 0.0);
    }

    #[test]
    fn predict_checks_width() {
        let data = line_data();
        let model =
            TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap();
        assert!(model.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn fit_is_deterministic() {
        let data = line_data();
        let fit = || {
            TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap()
        };
        assert_eq!(fit(), fit());
    }
}
