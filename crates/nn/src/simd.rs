//! Runtime SIMD dispatch for the batched layer kernels, pinned to a fixed
//! lane-reduction contract.
//!
//! The contract (DESIGN.md §11): SIMD lanes are mapped to *independent batch
//! rows*, never to the `k` dimension of a dot product. Each output element's
//! reduction therefore keeps the exact serial shape of the scalar kernel —
//! accumulator seeded with the bias, then one fused-nothing
//! multiply-then-add per input index, ascending — regardless of ISA width.
//! A lane is a whole accumulator, not a partial of one, so the AVX2, NEON,
//! and scalar builds produce bit-identical `f64` streams and the committed
//! goldens hold under `RUMBA_SIMD=0` and `=1` alike.
//!
//! Dispatch is runtime-selected: `RUMBA_SIMD=0|1|auto` (or the `--simd` CLI
//! flag, which installs a process-wide override the same way
//! `RUMBA_THREADS`/`--threads` does) picks between the scalar path and the
//! widest ISA the host supports. Forcing `1` on hardware without AVX2/NEON
//! silently falls back to scalar — the output is identical either way, so
//! the override only ever changes speed.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// SIMD dispatch policy, mirroring how `RUMBA_THREADS` selects a thread
/// count: an explicit process-wide override beats the `RUMBA_SIMD`
/// environment variable, which beats the `Auto` default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Always run the scalar kernels.
    Off,
    /// Use vector kernels when the host supports them (falls back to
    /// scalar on hardware without AVX2/NEON — never an error).
    On,
    /// Same dispatch as [`SimdMode::On`]; the default policy.
    Auto,
}

impl SimdMode {
    /// Parses a `RUMBA_SIMD` / `--simd` value. Accepts `0`/`off`/`scalar`,
    /// `1`/`on`/`simd`, and `auto` (case-insensitive).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "scalar" => Some(Self::Off),
            "1" | "on" | "simd" => Some(Self::On),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }
}

/// The instruction set a batched kernel dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar kernels (also the fallback when SIMD is off or
    /// unsupported).
    Scalar,
    /// x86-64 AVX2: 4 × `f64` / 16 × `i16` per vector.
    Avx2,
    /// AArch64 NEON: 2 × `f64` / 8 × `i16` per vector.
    Neon,
}

impl Isa {
    /// Stable lowercase name (`scalar` / `avx2` / `neon`) — the string the
    /// `pool` telemetry event carries.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
            Self::Neon => "neon",
        }
    }

    /// Numeric code for the telemetry gauge (`0`/`1`/`2`); `finish_run`
    /// maps it back to [`Isa::name`].
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::Scalar => 0,
            Self::Avx2 => 1,
            Self::Neon => 2,
        }
    }

    /// `f64` lanes one vector register holds on this ISA.
    #[must_use]
    pub(crate) fn lanes_f64(self) -> usize {
        match self {
            Self::Scalar => 1,
            Self::Avx2 => 4,
            Self::Neon => 2,
        }
    }
}

/// Process-wide override slot: 0 = unset, 1 = Off, 2 = On, 3 = Auto.
static SIMD_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or clears, with `None`) a process-wide SIMD policy override
/// that beats the `RUMBA_SIMD` environment variable — the `--simd` CLI
/// flag's hook, mirroring `rumba_parallel::set_thread_override`.
pub fn set_simd_override(mode: Option<SimdMode>) {
    let slot = match mode {
        None => 0,
        Some(SimdMode::Off) => 1,
        Some(SimdMode::On) => 2,
        Some(SimdMode::Auto) => 3,
    };
    SIMD_OVERRIDE.store(slot, Ordering::Relaxed);
}

fn env_mode() -> SimdMode {
    static ENV: OnceLock<SimdMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RUMBA_SIMD").ok().and_then(|v| SimdMode::parse(&v)).unwrap_or(SimdMode::Auto)
    })
}

/// The effective SIMD policy: override, then `RUMBA_SIMD`, then `Auto`.
#[must_use]
pub fn simd_mode() -> SimdMode {
    match SIMD_OVERRIDE.load(Ordering::Relaxed) {
        1 => SimdMode::Off,
        2 => SimdMode::On,
        3 => SimdMode::Auto,
        _ => env_mode(),
    }
}

/// The widest ISA this host supports (detected once, cached).
#[must_use]
pub fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON is architecturally mandatory on AArch64.
            return Isa::Neon;
        }
        #[allow(unreachable_code)]
        Isa::Scalar
    })
}

/// The ISA the batched kernels dispatch to under the current policy.
#[must_use]
pub fn active_isa() -> Isa {
    match simd_mode() {
        SimdMode::Off => Isa::Scalar,
        SimdMode::On | SimdMode::Auto => detected_isa(),
    }
}

/// Records the dispatched ISA in the telemetry registry (surfaced by the
/// `pool` event). One relaxed load when telemetry is disabled.
pub(crate) fn note_dispatch(isa: Isa) {
    if rumba_obs::enabled() {
        rumba_obs::metrics().set_gauge("pool.simd_isa", f64::from(isa.code()));
    }
}

/// Grows `buf` to at least `len` (never shrinking the allocation) and
/// returns the leading `len` elements. Freshly grown elements are zero;
/// callers overwrite whatever region they read.
pub(crate) fn ensure_len(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    &mut buf[..len]
}

// ---------------------------------------------------------------------------
// Row-lane f64 kernels.
//
// `xt` is a transpose-packed input tile: `rp` batch rows (padded to a lane
// multiple) × `in_dim` features, stored feature-major so `xt[k * rp + r]`
// is row `r`'s feature `k` and the `r` axis is contiguous. One call
// computes a single output neuron across all `rp` rows:
//
//     acc[r] = bias;  for k ascending:  acc[r] += w[k] * xt[k * rp + r]
//
// which is, per row, the scalar kernel's exact operation sequence
// (multiply rounds, then add rounds — no FMA, which would fuse them into
// one rounding and change the bits). Padding rows compute harmless finite
// garbage that the caller never unpacks.
// ---------------------------------------------------------------------------

/// Scalar reference of the packed-tile kernel (also documents the lane
/// semantics the vector versions must reproduce).
#[cfg(test)]
pub(crate) fn neuron_rows_scalar(wrow: &[f64], bias: f64, xt: &[f64], rp: usize, yt: &mut [f64]) {
    for (r, acc_out) in yt[..rp].iter_mut().enumerate() {
        let mut acc = bias;
        for (k, &w) in wrow.iter().enumerate() {
            acc += w * xt[k * rp + r];
        }
        *acc_out = acc;
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// One output neuron across a transpose-packed tile of `rp` rows
    /// (`rp % 4 == 0`). Per lane this is `bias; += w[k] * x[k]` ascending —
    /// `mul` then `add`, two roundings, exactly the scalar kernel.
    ///
    /// Safety: caller must ensure AVX2 is available, `xt.len() >=
    /// wrow.len() * rp`, `yt.len() >= rp`, and `rp % 4 == 0`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn neuron_rows(
        wrow: &[f64],
        bias: f64,
        xt: &[f64],
        rp: usize,
        yt: &mut [f64],
    ) {
        debug_assert_eq!(rp % 4, 0);
        debug_assert!(xt.len() >= wrow.len() * rp);
        debug_assert!(yt.len() >= rp);
        let mut rg = 0;
        // Four independent accumulators (16 rows) per pass: rows are
        // independent lanes, so unrolling across row groups hides the
        // add-latency chain without touching any row's reduction order.
        while rg + 16 <= rp {
            let mut acc0 = _mm256_set1_pd(bias);
            let mut acc1 = acc0;
            let mut acc2 = acc0;
            let mut acc3 = acc0;
            for (k, &w) in wrow.iter().enumerate() {
                let wv = _mm256_set1_pd(w);
                let base = xt.as_ptr().add(k * rp + rg);
                // No FMA: the scalar path rounds the product and the sum
                // separately, so the vector path must too.
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(wv, _mm256_loadu_pd(base)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(wv, _mm256_loadu_pd(base.add(4))));
                acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(wv, _mm256_loadu_pd(base.add(8))));
                acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(wv, _mm256_loadu_pd(base.add(12))));
            }
            let out = yt.as_mut_ptr().add(rg);
            _mm256_storeu_pd(out, acc0);
            _mm256_storeu_pd(out.add(4), acc1);
            _mm256_storeu_pd(out.add(8), acc2);
            _mm256_storeu_pd(out.add(12), acc3);
            rg += 16;
        }
        while rg < rp {
            let mut acc = _mm256_set1_pd(bias);
            for (k, &w) in wrow.iter().enumerate() {
                let x = _mm256_loadu_pd(xt.as_ptr().add(k * rp + rg));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(w), x));
            }
            _mm256_storeu_pd(yt.as_mut_ptr().add(rg), acc);
            rg += 4;
        }
    }

    /// `dst[i] += a * xs[i]` — the gradient-accumulation primitive
    /// (`gw[row + j] += dv * x[j]`), per element identical to the scalar
    /// loop. Ragged tail handled scalar, same operations.
    ///
    /// Safety: caller must ensure AVX2 is available and
    /// `dst.len() == xs.len()`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn axpy(a: f64, xs: &[f64], dst: &mut [f64]) {
        debug_assert_eq!(xs.len(), dst.len());
        let n = xs.len();
        let av = _mm256_set1_pd(a);
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(d, _mm256_mul_pd(av, x)));
            i += 4;
        }
        while i < n {
            *dst.get_unchecked_mut(i) += a * xs.get_unchecked(i);
            i += 1;
        }
    }

    /// `dst[i] += xs[i] * a` — operand order of the backpropagated-delta
    /// accumulation (`pd[j] += w[o * in + j] * dv`), kept distinct from
    /// [`axpy`] so NaN payload propagation matches the scalar loops
    /// operand-for-operand.
    ///
    /// Safety: caller must ensure AVX2 is available and
    /// `dst.len() == xs.len()`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn xpay(a: f64, xs: &[f64], dst: &mut [f64]) {
        debug_assert_eq!(xs.len(), dst.len());
        let n = xs.len();
        let av = _mm256_set1_pd(a);
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(d, _mm256_mul_pd(x, av)));
            i += 4;
        }
        while i < n {
            *dst.get_unchecked_mut(i) += xs.get_unchecked(i) * a;
            i += 1;
        }
    }

    /// Wrapping i32 dot product of two i16 vectors via `vpmaddwd`
    /// (pairwise i16×i16→i32 multiply-add, wrap-around). Mod-2^32
    /// addition is exactly associative, so any lane order — including the
    /// pairwise one — is bit-identical to the serial reference loop.
    ///
    /// Safety: caller must ensure AVX2 is available and
    /// `w.len() == x.len()`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn dot_i16(w: &[i16], x: &[i16]) -> i32 {
        debug_assert_eq!(w.len(), x.len());
        let n = w.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let wv = _mm256_loadu_si256(w.as_ptr().add(i).cast());
            let xv = _mm256_loadu_si256(x.as_ptr().add(i).cast());
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wv, xv));
            i += 16;
        }
        // horizontal wrapping sum of the 8 i32 lanes
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total = 0i32;
        for l in lanes {
            total = total.wrapping_add(l);
        }
        while i < n {
            total = total.wrapping_add(
                i32::from(*w.get_unchecked(i)).wrapping_mul(i32::from(*x.get_unchecked(i))),
            );
            i += 1;
        }
        total
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod arm {
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    /// NEON mirror of the AVX2 packed-tile kernel: 2 × `f64` lanes,
    /// same per-lane operation sequence (`vmulq` then `vaddq` — no fused
    /// `vfmaq`, which would change the rounding).
    ///
    /// Safety: caller must ensure `xt.len() >= wrow.len() * rp`,
    /// `yt.len() >= rp`, and `rp % 2 == 0`.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn neuron_rows(
        wrow: &[f64],
        bias: f64,
        xt: &[f64],
        rp: usize,
        yt: &mut [f64],
    ) {
        debug_assert_eq!(rp % 2, 0);
        let mut rg = 0;
        // Four independent accumulators (8 rows) per pass — row groups are
        // independent lanes, so this hides the add-latency chain without
        // touching any row's reduction order.
        while rg + 8 <= rp {
            let mut acc0 = vdupq_n_f64(bias);
            let mut acc1 = acc0;
            let mut acc2 = acc0;
            let mut acc3 = acc0;
            for (k, &w) in wrow.iter().enumerate() {
                let wv = vdupq_n_f64(w);
                let base = xt.as_ptr().add(k * rp + rg);
                acc0 = vaddq_f64(acc0, vmulq_f64(wv, vld1q_f64(base)));
                acc1 = vaddq_f64(acc1, vmulq_f64(wv, vld1q_f64(base.add(2))));
                acc2 = vaddq_f64(acc2, vmulq_f64(wv, vld1q_f64(base.add(4))));
                acc3 = vaddq_f64(acc3, vmulq_f64(wv, vld1q_f64(base.add(6))));
            }
            let out = yt.as_mut_ptr().add(rg);
            vst1q_f64(out, acc0);
            vst1q_f64(out.add(2), acc1);
            vst1q_f64(out.add(4), acc2);
            vst1q_f64(out.add(6), acc3);
            rg += 8;
        }
        while rg < rp {
            let mut acc = vdupq_n_f64(bias);
            for (k, &w) in wrow.iter().enumerate() {
                let x = vld1q_f64(xt.as_ptr().add(k * rp + rg));
                acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(w), x));
            }
            vst1q_f64(yt.as_mut_ptr().add(rg), acc);
            rg += 2;
        }
    }

    /// `dst[i] += a * xs[i]`; see the AVX2 twin for the contract.
    ///
    /// Safety: caller must ensure `dst.len() == xs.len()`.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn axpy(a: f64, xs: &[f64], dst: &mut [f64]) {
        debug_assert_eq!(xs.len(), dst.len());
        let n = xs.len();
        let av = vdupq_n_f64(a);
        let mut i = 0;
        while i + 2 <= n {
            let x = vld1q_f64(xs.as_ptr().add(i));
            let d = vld1q_f64(dst.as_ptr().add(i));
            vst1q_f64(dst.as_mut_ptr().add(i), vaddq_f64(d, vmulq_f64(av, x)));
            i += 2;
        }
        while i < n {
            *dst.get_unchecked_mut(i) += a * xs.get_unchecked(i);
            i += 1;
        }
    }

    /// `dst[i] += xs[i] * a`; see the AVX2 twin for the contract.
    ///
    /// Safety: caller must ensure `dst.len() == xs.len()`.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn xpay(a: f64, xs: &[f64], dst: &mut [f64]) {
        debug_assert_eq!(xs.len(), dst.len());
        let n = xs.len();
        let av = vdupq_n_f64(a);
        let mut i = 0;
        while i + 2 <= n {
            let x = vld1q_f64(xs.as_ptr().add(i));
            let d = vld1q_f64(dst.as_ptr().add(i));
            vst1q_f64(dst.as_mut_ptr().add(i), vaddq_f64(d, vmulq_f64(x, av)));
            i += 2;
        }
        while i < n {
            *dst.get_unchecked_mut(i) += xs.get_unchecked(i) * a;
            i += 1;
        }
    }

    /// Wrapping i32 dot product of two i16 vectors: widening multiplies
    /// plus wrapping i32 adds — exactly associative, so bit-identical to
    /// the serial reference loop.
    ///
    /// Safety: caller must ensure `w.len() == x.len()`.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn dot_i16(w: &[i16], x: &[i16]) -> i32 {
        debug_assert_eq!(w.len(), x.len());
        let n = w.len();
        let mut acc = vdupq_n_s32(0);
        let mut i = 0;
        while i + 8 <= n {
            let wv = vld1q_s16(w.as_ptr().add(i));
            let xv = vld1q_s16(x.as_ptr().add(i));
            acc = vaddq_s32(acc, vmull_s16(vget_low_s16(wv), vget_low_s16(xv)));
            acc = vaddq_s32(acc, vmull_high_s16(wv, xv));
            i += 8;
        }
        let mut lanes = [0i32; 4];
        vst1q_s32(lanes.as_mut_ptr(), acc);
        let mut total = 0i32;
        for l in lanes {
            total = total.wrapping_add(l);
        }
        while i < n {
            total = total.wrapping_add(
                i32::from(*w.get_unchecked(i)).wrapping_mul(i32::from(*x.get_unchecked(i))),
            );
            i += 1;
        }
        total
    }
}

/// Dispatches the packed-tile neuron kernel for `isa`. `rp` must be a
/// multiple of [`Isa::lanes_f64`]; on [`Isa::Scalar`] callers should use
/// the plain tiled loop instead (this falls back to it defensively).
pub(crate) fn neuron_rows_dispatch(
    isa: Isa,
    wrow: &[f64],
    bias: f64,
    xt: &[f64],
    rp: usize,
    yt: &mut [f64],
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_isa` only reports Avx2 after runtime detection;
        // buffer bounds are the caller's packed-tile invariants.
        Isa::Avx2 => unsafe { x86::neuron_rows(wrow, bias, xt, rp, yt) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is mandatory on aarch64.
        Isa::Neon => unsafe { arm::neuron_rows(wrow, bias, xt, rp, yt) },
        _ => {
            for (r, acc_out) in yt[..rp].iter_mut().enumerate() {
                let mut acc = bias;
                for (k, &w) in wrow.iter().enumerate() {
                    acc += w * xt[k * rp + r];
                }
                *acc_out = acc;
            }
        }
    }
}

/// Dispatched `dst[i] += a * xs[i]`.
pub(crate) fn axpy_dispatch(isa: Isa, a: f64, xs: &[f64], dst: &mut [f64]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime detection passed; lengths equal.
        Isa::Avx2 => unsafe { x86::axpy(a, xs, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is mandatory on aarch64.
        Isa::Neon => unsafe { arm::axpy(a, xs, dst) },
        _ => {
            for (d, &x) in dst.iter_mut().zip(xs) {
                *d += a * x;
            }
        }
    }
}

/// Dispatched `dst[i] += xs[i] * a`.
pub(crate) fn xpay_dispatch(isa: Isa, a: f64, xs: &[f64], dst: &mut [f64]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime detection passed; lengths equal.
        Isa::Avx2 => unsafe { x86::xpay(a, xs, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is mandatory on aarch64.
        Isa::Neon => unsafe { arm::xpay(a, xs, dst) },
        _ => {
            for (d, &x) in dst.iter_mut().zip(xs) {
                *d += x * a;
            }
        }
    }
}

/// Dispatched wrapping-i32 dot product of two i16 slices. Integer
/// accumulation is exactly associative, so every ISA returns the same
/// bits as the serial reference loop.
pub(crate) fn dot_i16_dispatch(isa: Isa, w: &[i16], x: &[i16]) -> i32 {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime detection passed; lengths equal.
        Isa::Avx2 => unsafe { x86::dot_i16(w, x) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is mandatory on aarch64.
        Isa::Neon => unsafe { arm::dot_i16(w, x) },
        _ => {
            let mut total = 0i32;
            for (&wv, &xv) in w.iter().zip(x) {
                total = total.wrapping_add(i32::from(wv).wrapping_mul(i32::from(xv)));
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_spellings() {
        for (text, want) in [
            ("0", SimdMode::Off),
            ("off", SimdMode::Off),
            ("SCALAR", SimdMode::Off),
            ("1", SimdMode::On),
            ("on", SimdMode::On),
            ("simd", SimdMode::On),
            (" auto ", SimdMode::Auto),
        ] {
            assert_eq!(SimdMode::parse(text), Some(want), "{text:?}");
        }
        assert_eq!(SimdMode::parse("maybe"), None);
        assert_eq!(SimdMode::parse(""), None);
    }

    #[test]
    fn isa_names_and_codes_are_stable() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Neon] {
            assert!(!isa.name().is_empty());
        }
        assert_eq!(Isa::Scalar.code(), 0);
        assert_eq!(Isa::Avx2.code(), 1);
        assert_eq!(Isa::Neon.code(), 2);
        assert_eq!(Isa::Scalar.lanes_f64(), 1);
    }

    #[test]
    fn off_override_forces_scalar() {
        set_simd_override(Some(SimdMode::Off));
        assert_eq!(active_isa(), Isa::Scalar);
        set_simd_override(Some(SimdMode::On));
        assert_eq!(active_isa(), detected_isa());
        set_simd_override(None);
    }

    #[test]
    fn vector_neuron_rows_match_scalar_bitwise() {
        // Deterministic pseudo-random tile, ragged weight lengths.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for in_dim in [1usize, 3, 8, 17] {
            let rp = 8; // multiple of every lane width
            let xt: Vec<f64> = (0..in_dim * rp).map(|_| next()).collect();
            let wrow: Vec<f64> = (0..in_dim).map(|_| next()).collect();
            let bias = next();
            let mut want = vec![0.0; rp];
            neuron_rows_scalar(&wrow, bias, &xt, rp, &mut want);
            let mut got = vec![0.0; rp];
            neuron_rows_dispatch(detected_isa(), &wrow, bias, &xt, rp, &mut got);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want), "in_dim {in_dim}");
        }
    }

    #[test]
    fn vector_axpy_matches_scalar_bitwise() {
        let xs: Vec<f64> = (0..23).map(|i| (i as f64).sin()).collect();
        for a in [0.37, -1.25e3, 0.0] {
            let mut want: Vec<f64> = (0..23).map(|i| (i as f64).cos()).collect();
            let mut got = want.clone();
            for (d, &x) in want.iter_mut().zip(&xs) {
                *d += a * x;
            }
            axpy_dispatch(detected_isa(), a, &xs, &mut got);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want));
            let mut want2: Vec<f64> = (0..23).map(|i| (i as f64).cos()).collect();
            let mut got2 = want2.clone();
            for (d, &x) in want2.iter_mut().zip(&xs) {
                *d += x * a;
            }
            xpay_dispatch(detected_isa(), a, &xs, &mut got2);
            assert_eq!(bits(&got2), bits(&want2));
        }
    }

    #[test]
    fn vector_dot_i16_matches_reference_wrapping_loop() {
        // Includes values big enough to wrap the i32 accumulator.
        let w: Vec<i16> = (0..37).map(|i| ((i * 7919) % 65536 - 32768) as i16).collect();
        let x: Vec<i16> = (0..37).map(|i| ((i * 104729) % 65536 - 32768) as i16).collect();
        let mut want = 0i32;
        for (&wv, &xv) in w.iter().zip(&x) {
            want = want.wrapping_add(i32::from(wv).wrapping_mul(i32::from(xv)));
        }
        assert_eq!(dot_i16_dispatch(detected_isa(), &w, &x), want);
        assert_eq!(dot_i16_dispatch(Isa::Scalar, &w, &x), want);
    }
}
