use crate::{NnError, Result};

/// Row-major, flat training data: `n` rows of `input_dim` features paired
/// with `n` rows of `output_dim` targets.
///
/// The flat layout keeps the hot training loop allocation-free and cache
/// friendly.
///
/// # Examples
///
/// ```
/// use rumba_nn::NnDataset;
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// let data = NnDataset::from_fn(2, 1, 4, |i, x, y| {
///     x[0] = i as f64;
///     x[1] = 2.0 * i as f64;
///     y[0] = x[0] + x[1];
/// })?;
/// assert_eq!(data.len(), 4);
/// assert_eq!(data.input(3), &[3.0, 6.0]);
/// assert_eq!(data.target(3), &[9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NnDataset {
    input_dim: usize,
    output_dim: usize,
    inputs: Vec<f64>,
    targets: Vec<f64>,
}

impl NnDataset {
    /// Creates an empty dataset with the given row widths.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParam`] if either width is zero.
    pub fn new(input_dim: usize, output_dim: usize) -> Result<Self> {
        if input_dim == 0 {
            return Err(NnError::InvalidParam { name: "input_dim", value: "0".to_owned() });
        }
        if output_dim == 0 {
            return Err(NnError::InvalidParam { name: "output_dim", value: "0".to_owned() });
        }
        Ok(Self { input_dim, output_dim, inputs: Vec::new(), targets: Vec::new() })
    }

    /// Builds a dataset of `n` rows by invoking `fill(row_index, input_row,
    /// target_row)` for each row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParam`] if either width is zero.
    pub fn from_fn<F>(input_dim: usize, output_dim: usize, n: usize, mut fill: F) -> Result<Self>
    where
        F: FnMut(usize, &mut [f64], &mut [f64]),
    {
        let mut data = Self::new(input_dim, output_dim)?;
        data.inputs = vec![0.0; n * input_dim];
        data.targets = vec![0.0; n * output_dim];
        for i in 0..n {
            let (x, y) = data.row_mut(i);
            fill(i, x, y);
        }
        Ok(data)
    }

    /// Builds a dataset from parallel row iterators.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if any row has the wrong width
    /// and [`NnError::InvalidParam`] if either declared width is zero.
    pub fn from_rows(
        input_dim: usize,
        output_dim: usize,
        rows: impl IntoIterator<Item = (Vec<f64>, Vec<f64>)>,
    ) -> Result<Self> {
        let mut data = Self::new(input_dim, output_dim)?;
        for (x, y) in rows {
            data.push(&x, &y)?;
        }
        Ok(data)
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if either slice has the wrong
    /// width.
    pub fn push(&mut self, input: &[f64], target: &[f64]) -> Result<()> {
        if input.len() != self.input_dim {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim,
                actual: input.len(),
                port: "dataset input row",
            });
        }
        if target.len() != self.output_dim {
            return Err(NnError::DimensionMismatch {
                expected: self.output_dim,
                actual: target.len(),
                port: "dataset target row",
            });
        }
        self.inputs.extend_from_slice(input);
        self.targets.extend_from_slice(target);
        Ok(())
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len().checked_div(self.input_dim).unwrap_or(0)
    }

    /// Whether the dataset holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Feature width of each row.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Target width of each row.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The `i`-th feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn input(&self, i: usize) -> &[f64] {
        &self.inputs[i * self.input_dim..(i + 1) * self.input_dim]
    }

    /// The `i`-th target row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn target(&self, i: usize) -> &[f64] {
        &self.targets[i * self.output_dim..(i + 1) * self.output_dim]
    }

    /// All feature rows as one borrowed `len × input_dim` matrix view — the
    /// zero-copy entry point into the batched evaluation paths.
    #[must_use]
    pub fn inputs_view(&self) -> crate::MatrixView<'_> {
        crate::MatrixView::new(&self.inputs, self.len(), self.input_dim)
    }

    /// All target rows as one borrowed `len × output_dim` matrix view.
    #[must_use]
    pub fn targets_view(&self) -> crate::MatrixView<'_> {
        crate::MatrixView::new(&self.targets, self.len(), self.output_dim)
    }

    fn row_mut(&mut self, i: usize) -> (&mut [f64], &mut [f64]) {
        let x = &mut self.inputs[i * self.input_dim..(i + 1) * self.input_dim];
        // Split borrows: targets and inputs are disjoint fields, but the
        // borrow checker cannot see that through two method calls.
        let y_ptr = &mut self.targets[i * self.output_dim..(i + 1) * self.output_dim];
        (x, y_ptr)
    }

    /// Iterates over `(input, target)` row pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &[f64])> + '_ {
        (0..self.len()).map(move |i| (self.input(i), self.target(i)))
    }

    /// Returns a new dataset containing the rows whose indices are in
    /// `indices`, in that order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut out = Self {
            input_dim: self.input_dim,
            output_dim: self.output_dim,
            inputs: Vec::with_capacity(indices.len() * self.input_dim),
            targets: Vec::with_capacity(indices.len() * self.output_dim),
        };
        for &i in indices {
            out.inputs.extend_from_slice(self.input(i));
            out.targets.extend_from_slice(self.target(i));
        }
        out
    }
}

/// Per-feature min-max scaling into `[lo, hi]`, recorded at training time so
/// inference applies the identical transform.
///
/// Constant features (min == max) are mapped to the middle of the range.
///
/// # Examples
///
/// ```
/// use rumba_nn::Normalizer;
///
/// let rows = [vec![0.0, 10.0], vec![4.0, 30.0]];
/// let norm = Normalizer::fit(rows.iter().map(Vec::as_slice), 2, 0.0, 1.0);
/// let mut v = vec![2.0, 20.0];
/// norm.apply(&mut v);
/// assert_eq!(v, vec![0.5, 0.5]);
/// norm.invert(&mut v);
/// assert_eq!(v, vec![2.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    lo: f64,
    hi: f64,
}

impl Normalizer {
    /// Fits scaling bounds over an iterator of feature rows of width `dim`.
    ///
    /// Rows shorter or longer than `dim` contribute only their first `dim`
    /// values; an empty iterator yields an identity-like normalizer over
    /// `[0, 1]` inputs.
    #[must_use]
    pub fn fit<'a>(
        rows: impl IntoIterator<Item = &'a [f64]>,
        dim: usize,
        lo: f64,
        hi: f64,
    ) -> Self {
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            for (j, &v) in row.iter().take(dim).enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        for j in 0..dim {
            if !mins[j].is_finite() {
                mins[j] = 0.0;
                maxs[j] = 1.0;
            }
        }
        Self { mins, maxs, lo, hi }
    }

    /// Identity normalizer of the given width (useful for already-scaled
    /// data).
    #[must_use]
    pub fn identity(dim: usize) -> Self {
        Self { mins: vec![0.0; dim], maxs: vec![1.0; dim], lo: 0.0, hi: 1.0 }
    }

    /// Feature width this normalizer was fitted on.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Per-feature minima observed at fit time.
    #[must_use]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-feature maxima observed at fit time.
    #[must_use]
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// The `(lo, hi)` range values are scaled into.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Reconstructs a normalizer from its recorded bounds (the inverse of
    /// the accessors above; used by the config-stream decoder).
    ///
    /// # Panics
    ///
    /// Panics if `mins` and `maxs` have different lengths.
    #[must_use]
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>, lo: f64, hi: f64) -> Self {
        assert_eq!(mins.len(), maxs.len(), "bounds must be parallel");
        Self { mins, maxs, lo, hi }
    }

    /// Scales `values` in place into `[lo, hi]`.
    pub fn apply(&self, values: &mut [f64]) {
        for (j, v) in values.iter_mut().enumerate().take(self.mins.len()) {
            let span = self.maxs[j] - self.mins[j];
            *v = if span.abs() < f64::EPSILON {
                0.5 * (self.lo + self.hi)
            } else {
                self.lo + (*v - self.mins[j]) / span * (self.hi - self.lo)
            };
        }
    }

    /// Undoes [`Normalizer::apply`] in place.
    pub fn invert(&self, values: &mut [f64]) {
        for (j, v) in values.iter_mut().enumerate().take(self.mins.len()) {
            let span = self.maxs[j] - self.mins[j];
            let unit = (*v - self.lo) / (self.hi - self.lo);
            *v = self.mins[j] + unit * span;
        }
    }

    /// Returns a copy of the dataset with inputs and targets normalized by
    /// the two supplied normalizers.
    #[must_use]
    pub fn normalize_dataset(
        input_norm: &Normalizer,
        target_norm: &Normalizer,
        data: &NnDataset,
    ) -> NnDataset {
        let mut out = data.clone();
        for i in 0..out.len() {
            let (x, y) = out.row_mut(i);
            input_norm.apply(x);
            target_norm.apply(y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_widths() {
        assert!(NnDataset::new(0, 1).is_err());
        assert!(NnDataset::new(1, 0).is_err());
    }

    #[test]
    fn push_validates_row_widths() {
        let mut d = NnDataset::new(2, 1).unwrap();
        assert!(d.push(&[1.0], &[1.0]).is_err());
        assert!(d.push(&[1.0, 2.0], &[]).is_err());
        assert!(d.push(&[1.0, 2.0], &[3.0]).is_ok());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn from_rows_round_trips() {
        let d = NnDataset::from_rows(1, 2, vec![(vec![1.0], vec![2.0, 3.0])]).unwrap();
        assert_eq!(d.input(0), &[1.0]);
        assert_eq!(d.target(0), &[2.0, 3.0]);
    }

    #[test]
    fn subset_preserves_order() {
        let d = NnDataset::from_fn(1, 1, 5, |i, x, y| {
            x[0] = i as f64;
            y[0] = -(i as f64);
        })
        .unwrap();
        let s = d.subset(&[4, 0, 2]);
        assert_eq!(s.input(0), &[4.0]);
        assert_eq!(s.input(1), &[0.0]);
        assert_eq!(s.target(2), &[-2.0]);
    }

    #[test]
    fn iter_yields_all_rows() {
        let d = NnDataset::from_fn(2, 1, 3, |i, x, y| {
            x[0] = i as f64;
            x[1] = i as f64 + 0.5;
            y[0] = 1.0;
        })
        .unwrap();
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn normalizer_handles_constant_feature() {
        let rows = [vec![5.0, 1.0], vec![5.0, 3.0]];
        let norm = Normalizer::fit(rows.iter().map(Vec::as_slice), 2, 0.0, 1.0);
        let mut v = vec![5.0, 2.0];
        norm.apply(&mut v);
        assert_eq!(v[0], 0.5);
        assert_eq!(v[1], 0.5);
    }

    #[test]
    fn normalizer_custom_range() {
        let rows = [vec![0.0], vec![2.0]];
        let norm = Normalizer::fit(rows.iter().map(Vec::as_slice), 1, -1.0, 1.0);
        let mut v = [0.0, 1.0, 2.0];
        // Only first `dim` entries are scaled.
        norm.apply(&mut v[0..1]);
        assert_eq!(v[0], -1.0);
    }

    #[test]
    fn normalize_dataset_scales_both_sides() {
        let d = NnDataset::from_fn(1, 1, 3, |i, x, y| {
            x[0] = i as f64;
            y[0] = 10.0 * i as f64;
        })
        .unwrap();
        let nx = Normalizer::fit((0..d.len()).map(|i| d.input(i)), 1, 0.0, 1.0);
        let ny = Normalizer::fit((0..d.len()).map(|i| d.target(i)), 1, 0.0, 1.0);
        let scaled = Normalizer::normalize_dataset(&nx, &ny, &d);
        assert_eq!(scaled.input(2), &[1.0]);
        assert_eq!(scaled.target(2), &[1.0]);
        assert_eq!(scaled.input(0), &[0.0]);
    }

    #[test]
    fn empty_fit_is_identity_like() {
        let norm = Normalizer::fit(std::iter::empty(), 2, 0.0, 1.0);
        let mut v = vec![0.25, 0.75];
        norm.apply(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
    }
}
