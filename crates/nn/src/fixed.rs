//! i16/i32 fixed-point batched forward path for quantized models.
//!
//! The f64 quantized path (`predict_batch_quantized`) *simulates* a
//! limited-precision datapath by rounding every parameter and activation to
//! a `2^-bits` grid while still accumulating in floating point. This module
//! goes the rest of the way and *is* one: weights and activations are
//! Q-format `i16` at scale `2^frac_bits`, biases and accumulators are `i32`
//! at the squared scale, and products are summed with wrapping adds.
//! Mod-2^32 addition is exactly associative, so lane order is irrelevant and
//! the SIMD kernels (`vpmaddwd` on AVX2, widening multiplies on NEON) are
//! trivially bit-exact against the serial reference loop — the easy half of
//! the lane-reduction contract in DESIGN.md §11.
//!
//! Between layers the accumulator is rescaled through `f64` for the
//! activation function (the accelerator's lookup-table stage), then
//! re-quantized; the output layer leaves application-unit `f64`s.

use crate::matrix::FixedScratch;
use crate::simd::{self, Isa};
use crate::{Activation, Matrix, MatrixView, NnError, Normalizer, Result, Scratch, TrainedModel};

/// Widest usable Q-format fraction: 14 fractional bits keeps `i16` weights
/// in `(-4, 4)` with headroom and the `i32` bias scale at `2^28`.
pub const MAX_FRAC_BITS: u32 = 14;

/// Rounds to the nearest representable Q-value, saturating at the `i16`
/// range (non-finite inputs collapse to zero, matching Rust's saturating
/// float casts).
fn quant16(v: f64, s: f64) -> i16 {
    (v * s).round() as i16
}

/// Bias quantizer: `i32` at the squared scale so it adds directly onto the
/// product accumulator.
fn quant32(v: f64, s: f64) -> i32 {
    (v * s * s).round() as i32
}

fn ensure_len_i16(buf: &mut Vec<i16>, len: usize) -> &mut [i16] {
    if buf.len() < len {
        buf.resize(len, 0);
    }
    &mut buf[..len]
}

/// One dense layer in Q-format: `i16` weights at scale `2^frac_bits`,
/// `i32` biases at the squared scale.
#[derive(Debug, Clone, PartialEq)]
struct FixedLayer {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<i16>,
    biases: Vec<i32>,
    activation: Activation,
}

impl FixedLayer {
    /// Accumulates one output neuron for one row: bias plus the wrapping
    /// product sum. Wrapping arithmetic makes this independent of
    /// summation order, so the dispatched kernel matches the serial loop
    /// bit for bit.
    fn accumulate(&self, o: usize, xrow: &[i16], isa: Isa) -> i32 {
        let wrow = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
        simd::dot_i16_dispatch(isa, wrow, xrow).wrapping_add(self.biases[o])
    }

    /// Hidden-layer kernel: rows in, re-quantized rows out.
    fn forward_rows_q(&self, n: usize, input: &[i16], output: &mut [i16], isa: Isa, s: f64) {
        let s2 = s * s;
        for r in 0..n {
            let xrow = &input[r * self.in_dim..(r + 1) * self.in_dim];
            let orow = &mut output[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, out_val) in orow.iter_mut().enumerate() {
                let acc = self.accumulate(o, xrow, isa);
                *out_val = quant16(self.activation.apply(f64::from(acc) / s2), s);
            }
        }
    }

    /// Output-layer kernel: rows in, normalized-space `f64` rows out.
    fn forward_rows_f64(&self, n: usize, input: &[i16], output: &mut [f64], isa: Isa, s: f64) {
        let s2 = s * s;
        for r in 0..n {
            let xrow = &input[r * self.in_dim..(r + 1) * self.in_dim];
            let orow = &mut output[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, out_val) in orow.iter_mut().enumerate() {
                let acc = self.accumulate(o, xrow, isa);
                *out_val = self.activation.apply(f64::from(acc) / s2);
            }
        }
    }
}

/// A [`TrainedModel`] lowered onto an integer datapath: `i16` weights and
/// activations, `i32` accumulation, per-layer activation through `f64`.
///
/// Prepared once (the quantization cost is paid at construction, not per
/// invocation) and evaluated in application units like the source model.
///
/// # Examples
///
/// ```
/// use rumba_nn::{Activation, FixedModel, Matrix, MatrixView, NnDataset, Scratch,
///                TrainParams, TrainedModel};
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// let data = NnDataset::from_fn(1, 1, 64, |i, x, y| {
///     x[0] = i as f64 / 64.0;
///     y[0] = 2.0 * x[0];
/// })?;
/// let params = TrainParams { epochs: 10, ..TrainParams::default() };
/// let model = TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data, &params, 1)?;
/// let fixed = model.prepare_fixed(12);
/// let serial = fixed.predict(&[0.5])?;
/// let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
/// let rows = [0.5, 0.25];
/// fixed.predict_batch(MatrixView::new(&rows, 2, 1), &mut scratch, &mut out)?;
/// assert_eq!(out.row(0), serial.as_slice());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FixedModel {
    layers: Vec<FixedLayer>,
    input_norm: Normalizer,
    output_norm: Normalizer,
    input_dim: usize,
    output_dim: usize,
    frac_bits: u32,
}

impl TrainedModel {
    /// Lowers this model onto the `i16`/`i32` fixed-point datapath with
    /// `frac_bits` fractional bits (clamped to `1..=`[`MAX_FRAC_BITS`]).
    #[must_use]
    pub fn prepare_fixed(&self, frac_bits: u32) -> FixedModel {
        FixedModel::prepare(self, frac_bits)
    }
}

impl FixedModel {
    /// Quantizes every layer of `model` at scale `2^frac_bits` (clamped to
    /// `1..=`[`MAX_FRAC_BITS`]; weights saturate at the `i16` range).
    #[must_use]
    pub fn prepare(model: &TrainedModel, frac_bits: u32) -> Self {
        let frac_bits = frac_bits.clamp(1, MAX_FRAC_BITS);
        let s = f64::from(1u32 << frac_bits);
        let layers = model
            .mlp()
            .layers()
            .iter()
            .map(|layer| FixedLayer {
                in_dim: layer.in_dim(),
                out_dim: layer.out_dim(),
                weights: layer.weights().iter().map(|&w| quant16(w, s)).collect(),
                biases: layer.biases().iter().map(|&b| quant32(b, s)).collect(),
                activation: layer.activation(),
            })
            .collect();
        Self {
            layers,
            input_norm: model.input_norm().clone(),
            output_norm: model.output_norm().clone(),
            input_dim: model.mlp().input_dim(),
            output_dim: model.mlp().output_dim(),
            frac_bits,
        }
    }

    /// The effective fractional-bit width (after clamping).
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Input width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn scale(&self) -> f64 {
        f64::from(1u32 << self.frac_bits)
    }

    /// Evaluates one row in application units — the serial reference the
    /// batched path is pinned against bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] if `input` has the
    /// wrong width.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>> {
        if input.len() != self.input_dim {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim,
                actual: input.len(),
                port: "network input",
            });
        }
        let s = self.scale();
        let mut x = input.to_vec();
        self.input_norm.apply(&mut x);
        let mut qa: Vec<i16> = x.iter().map(|&v| quant16(v, s)).collect();
        let mut qb: Vec<i16> = Vec::new();
        let mut out = vec![0.0; self.output_dim];
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            if li == last {
                layer.forward_rows_f64(1, &qa, &mut out, Isa::Scalar, s);
            } else {
                qb.resize(layer.out_dim, 0);
                layer.forward_rows_q(1, &qa, &mut qb, Isa::Scalar, s);
                std::mem::swap(&mut qa, &mut qb);
            }
        }
        self.output_norm.invert(&mut out);
        Ok(out)
    }

    /// Batched counterpart of [`FixedModel::predict`]: row chunks fan out
    /// over the deterministic pool, every row is bit-identical to the
    /// serial path at any thread count and under any SIMD dispatch, and a
    /// reused `scratch`/`out` pair allocates nothing in steady state on
    /// the single-thread path.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] if `inputs` has the
    /// wrong width.
    pub fn predict_batch(
        &self,
        inputs: MatrixView<'_>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        if inputs.cols() != self.input_dim {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim,
                actual: inputs.cols(),
                port: "network input",
            });
        }
        let n = inputs.rows();
        out.resize(n, self.output_dim);
        let pool = rumba_parallel::ThreadPool::new();
        if pool.threads() <= 1 {
            self.predict_rows_into(inputs, scratch, out.as_mut_slice());
        } else {
            let out_dim = self.output_dim;
            pool.par_chunks_mut(out.as_mut_slice(), out_dim, |_c, range, chunk_out| {
                let mut local = Scratch::new();
                let sub = inputs.rows_range(range.start, range.end);
                self.predict_rows_into(sub, &mut local, chunk_out);
            });
        }
        Ok(())
    }

    /// Serial batched path: normalize and quantize the input rows, ping-pong
    /// the `i16` activations through the layers, devolve the output layer to
    /// `f64`, invert the output normalizer.
    fn predict_rows_into(&self, inputs: MatrixView<'_>, scratch: &mut Scratch, out: &mut [f64]) {
        let isa = simd::active_isa();
        simd::note_dispatch(isa);
        let s = self.scale();
        let n = inputs.rows();
        let Scratch { staged, fixed, .. } = scratch;
        staged.resize(n, inputs.cols());
        staged.as_mut_slice().copy_from_slice(inputs.as_slice());
        for r in 0..n {
            self.input_norm.apply(staged.row_mut(r));
        }
        let FixedScratch { qa, qb } = fixed;
        let staged_flat = staged.as_slice();
        {
            let qa = ensure_len_i16(qa, n * self.input_dim);
            for (dst, &v) in qa.iter_mut().zip(staged_flat) {
                *dst = quant16(v, s);
            }
        }
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            if li == last {
                layer.forward_rows_f64(n, &qa[..n * layer.in_dim], out, isa, s);
            } else {
                let dst = ensure_len_i16(qb, n * layer.out_dim);
                layer.forward_rows_q(n, &qa[..n * layer.in_dim], dst, isa, s);
                std::mem::swap(qa, qb);
            }
        }
        for row in out.chunks_mut(self.output_dim) {
            self.output_norm.invert(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NnDataset, TrainParams};

    fn toy_model() -> TrainedModel {
        let data = NnDataset::from_fn(2, 2, 48, |i, x, y| {
            let t = i as f64 / 48.0;
            x[0] = t;
            x[1] = 1.0 - t;
            y[0] = t * 2.0;
            y[1] = (t * 3.0).sin();
        })
        .unwrap();
        let params = TrainParams { epochs: 8, ..TrainParams::default() };
        TrainedModel::fit(&[2, 6, 2], Activation::Sigmoid, &data, &params, 5).unwrap()
    }

    #[test]
    fn quantizers_saturate_and_zero_non_finite() {
        assert_eq!(quant16(1e9, 16.0), i16::MAX);
        assert_eq!(quant16(-1e9, 16.0), i16::MIN);
        assert_eq!(quant16(f64::NAN, 16.0), 0);
        assert_eq!(quant16(0.5, 16.0), 8);
        assert_eq!(quant32(1.0, 16.0), 256);
    }

    #[test]
    fn frac_bits_are_clamped() {
        let model = toy_model();
        assert_eq!(model.prepare_fixed(0).frac_bits(), 1);
        assert_eq!(model.prepare_fixed(99).frac_bits(), MAX_FRAC_BITS);
        assert_eq!(model.prepare_fixed(10).frac_bits(), 10);
    }

    #[test]
    fn predict_checks_width() {
        let fixed = toy_model().prepare_fixed(12);
        assert!(fixed.predict(&[1.0]).is_err());
        assert!(fixed.predict(&[0.2, 0.4]).is_ok());
    }

    #[test]
    fn fixed_point_tracks_the_float_model_at_high_precision() {
        let model = toy_model();
        let fixed = model.prepare_fixed(14);
        let coarse = model.prepare_fixed(4);
        let x = [0.31, 0.62];
        let exact = model.predict(&x).unwrap();
        let fine_out = fixed.predict(&x).unwrap();
        let coarse_out = coarse.predict(&x).unwrap();
        let dist = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(p, q)| (p - q).abs()).sum::<f64>();
        assert!(dist(&fine_out, &exact) < dist(&coarse_out, &exact) + 1e-12);
        assert!(dist(&fine_out, &exact) < 0.05, "14-bit grid stays close: {fine_out:?} {exact:?}");
    }

    #[test]
    fn batch_matches_serial_bitwise() {
        let fixed = toy_model().prepare_fixed(12);
        let flat: Vec<f64> = (0..26).map(|i| f64::from(i) / 13.0).collect();
        let inputs = MatrixView::new(&flat, 13, 2);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        fixed.predict_batch(inputs, &mut scratch, &mut out).unwrap();
        for r in 0..13 {
            let serial = fixed.predict(inputs.row(r)).unwrap();
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(out.row(r)), bits(&serial), "row {r}");
        }
    }

    #[test]
    fn prepared_model_is_deterministic() {
        let model = toy_model();
        assert_eq!(model.prepare_fixed(12), model.prepare_fixed(12));
    }
}
