//! Config-stream serialization of trained models.
//!
//! The paper embeds the accelerator configuration in the application binary
//! and ships it to the NPU through the config queue (Figure 4). This module
//! defines that wire format for [`TrainedModel`]: a self-describing stream
//! of `f64` words —
//!
//! ```text
//! [magic, input_dim, output_dim, n_layers,
//!  layer sizes...,
//!  hidden activation code,
//!  flat parameters (weights then biases per layer)...,
//!  input normalizer  (lo, hi, mins..., maxs...),
//!  output normalizer (lo, hi, mins..., maxs...)]
//! ```
//!
//! Everything is `f64` because the config queue is a word stream; counts
//! are stored as exact small integers, which `f64` represents losslessly.

use crate::{Activation, Mlp, NnError, Normalizer, Result, TrainedModel};

/// Magic word marking the start of a model config stream.
pub const MODEL_MAGIC: f64 = 0x52_4D_42_41 as f64; // "RMBA"

fn activation_code(act: Activation) -> f64 {
    match act {
        Activation::Sigmoid => 0.0,
        Activation::Tanh => 1.0,
        Activation::Relu => 2.0,
        Activation::Identity => 3.0,
    }
}

fn activation_from_code(code: f64) -> Result<Activation> {
    match code as i64 {
        0 => Ok(Activation::Sigmoid),
        1 => Ok(Activation::Tanh),
        2 => Ok(Activation::Relu),
        3 => Ok(Activation::Identity),
        _ => Err(NnError::InvalidParam { name: "activation code", value: code.to_string() }),
    }
}

/// Serializes a trained model into config words.
///
/// # Examples
///
/// ```
/// use rumba_nn::{encode_model, decode_model, Activation, NnDataset, TrainedModel, TrainParams};
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// let data = NnDataset::from_fn(1, 1, 64, |i, x, y| {
///     x[0] = i as f64;
///     y[0] = 2.0 * x[0];
/// })?;
/// let model = TrainedModel::fit(&[1, 2, 1], Activation::Sigmoid, &data,
///                               &TrainParams::default(), 1)?;
/// let words = encode_model(&model);
/// let restored = decode_model(&words)?;
/// assert_eq!(model.predict(&[10.0])?, restored.predict(&[10.0])?);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn encode_model(model: &TrainedModel) -> Vec<f64> {
    let mlp = model.mlp();
    let topo = mlp.topology();
    let mut words = vec![MODEL_MAGIC];
    words.push(mlp.input_dim() as f64);
    words.push(mlp.output_dim() as f64);
    words.push(topo.len() as f64);
    words.extend(topo.iter().map(|&n| n as f64));
    // Hidden activation (output layer is always identity by construction).
    let hidden_act = mlp.layers().first().map_or(Activation::Sigmoid, |l| l.activation());
    words.push(activation_code(hidden_act));
    words.extend(mlp.to_flat_params());
    for norm in [model.input_norm(), model.output_norm()] {
        let (lo, hi) = norm.range();
        words.push(lo);
        words.push(hi);
        words.extend_from_slice(norm.mins());
        words.extend_from_slice(norm.maxs());
    }
    words
}

/// Reconstructs a [`TrainedModel`] from [`encode_model`] output.
///
/// # Errors
///
/// Returns [`NnError::InvalidParam`] for a bad magic word or activation
/// code, and [`NnError::DimensionMismatch`] when the stream is truncated or
/// the parameter count disagrees with the encoded topology.
pub fn decode_model(words: &[f64]) -> Result<TrainedModel> {
    let mut cursor = Cursor { words, pos: 0 };
    let magic = cursor.next()?;
    if magic != MODEL_MAGIC {
        return Err(NnError::InvalidParam { name: "config magic", value: magic.to_string() });
    }
    let input_dim = cursor.next_count()?;
    let output_dim = cursor.next_count()?;
    let n_layers = cursor.next_count()?;
    let mut topo = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        topo.push(cursor.next_count()?);
    }
    if topo.first() != Some(&input_dim) || topo.last() != Some(&output_dim) {
        return Err(NnError::InvalidTopology { layers: topo });
    }
    let hidden_act = activation_from_code(cursor.next()?)?;

    let mut mlp = Mlp::new(&topo, hidden_act, 0)?;
    let params = cursor.take(mlp.param_count())?;
    mlp.set_flat_params(params)?;

    let mut norms = Vec::with_capacity(2);
    for dim in [input_dim, output_dim] {
        let lo = cursor.next()?;
        let hi = cursor.next()?;
        let mins = cursor.take(dim)?.to_vec();
        let maxs = cursor.take(dim)?.to_vec();
        norms.push(Normalizer::from_bounds(mins, maxs, lo, hi));
    }
    let output_norm = norms.pop().expect("two normalizers decoded");
    let input_norm = norms.pop().expect("two normalizers decoded");
    if cursor.pos != words.len() {
        return Err(NnError::DimensionMismatch {
            expected: cursor.pos,
            actual: words.len(),
            port: "config stream length",
        });
    }
    Ok(TrainedModel::from_parts(mlp, input_norm, output_norm))
}

struct Cursor<'a> {
    words: &'a [f64],
    pos: usize,
}

impl Cursor<'_> {
    fn next(&mut self) -> Result<f64> {
        let w = self.words.get(self.pos).copied().ok_or(NnError::DimensionMismatch {
            expected: self.pos + 1,
            actual: self.words.len(),
            port: "config stream (truncated)",
        })?;
        self.pos += 1;
        Ok(w)
    }

    fn next_count(&mut self) -> Result<usize> {
        let w = self.next()?;
        if w < 0.0 || w.fract() != 0.0 || w > 1e9 {
            return Err(NnError::InvalidParam { name: "config count", value: w.to_string() });
        }
        Ok(w as usize)
    }

    fn take(&mut self, n: usize) -> Result<&[f64]> {
        if self.pos + n > self.words.len() {
            return Err(NnError::DimensionMismatch {
                expected: self.pos + n,
                actual: self.words.len(),
                port: "config stream (truncated)",
            });
        }
        let slice = &self.words[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NnDataset, TrainParams};

    fn model() -> TrainedModel {
        let data = NnDataset::from_fn(2, 1, 64, |i, x, y| {
            x[0] = i as f64;
            x[1] = (i * 3 % 7) as f64;
            y[0] = x[0] + 2.0 * x[1];
        })
        .unwrap();
        TrainedModel::fit(&[2, 4, 1], Activation::Tanh, &data, &TrainParams::default(), 9).unwrap()
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let m = model();
        let restored = decode_model(&encode_model(&m)).unwrap();
        for i in 0..10 {
            let x = [i as f64, (i * 2) as f64];
            assert_eq!(m.predict(&x).unwrap(), restored.predict(&x).unwrap());
        }
    }

    #[test]
    fn round_trip_preserves_activation() {
        let m = model();
        let restored = decode_model(&encode_model(&m)).unwrap();
        assert_eq!(restored.mlp().layers()[0].activation(), Activation::Tanh);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut words = encode_model(&model());
        words[0] = 123.0;
        assert!(matches!(decode_model(&words), Err(NnError::InvalidParam { .. })));
    }

    #[test]
    fn truncated_stream_rejected() {
        let words = encode_model(&model());
        for cut in [1, 5, words.len() / 2, words.len() - 1] {
            assert!(decode_model(&words[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut words = encode_model(&model());
        words.push(0.0);
        assert!(decode_model(&words).is_err());
    }

    #[test]
    fn corrupt_count_rejected() {
        let mut words = encode_model(&model());
        words[1] = -3.0; // input_dim
        assert!(decode_model(&words).is_err());
        words[1] = 2.5;
        assert!(decode_model(&words).is_err());
    }
}
