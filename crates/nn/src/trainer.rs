use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::LaneScratch;
use crate::simd::{self, Isa};
use crate::{Matrix, Mlp, NnDataset, NnError, Result};

/// Hyper-parameters for [`Trainer`].
///
/// The defaults are tuned to train the small Table-1 topologies to
/// convergence in well under a second.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainParams {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Classical momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// Mini-batch size (clamped to the dataset length).
    pub batch_size: usize,
    /// Shuffle seed; the same seed reproduces the same parameter trajectory.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self { epochs: 120, learning_rate: 0.2, momentum: 0.9, batch_size: 16, seed: 0x5eed }
    }
}

impl TrainParams {
    fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(NnError::InvalidParam { name: "epochs", value: "0".to_owned() });
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(NnError::InvalidParam {
                name: "learning_rate",
                value: self.learning_rate.to_string(),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(NnError::InvalidParam {
                name: "momentum",
                value: self.momentum.to_string(),
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::InvalidParam { name: "batch_size", value: "0".to_owned() });
        }
        Ok(())
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Mean-squared-error loss after each epoch, first epoch first.
    #[must_use]
    pub fn epoch_losses(&self) -> &[f64] {
        &self.epoch_losses
    }

    /// Loss after the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (zero epochs), which [`Trainer::train`]
    /// never produces.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("training always runs at least one epoch")
    }
}

/// Mini-batch SGD/momentum trainer for [`Mlp`] networks.
///
/// # Examples
///
/// ```
/// use rumba_nn::{Activation, Mlp, NnDataset, TrainParams, Trainer};
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// // Learn y = 2x on [0, 1].
/// let data = NnDataset::from_fn(1, 1, 64, |i, x, y| {
///     x[0] = i as f64 / 64.0;
///     y[0] = 2.0 * x[0];
/// })?;
/// let mut mlp = Mlp::new(&[1, 4, 1], Activation::Sigmoid, 1)?;
/// let report = Trainer::new(TrainParams::default()).train(&mut mlp, &data)?;
/// assert!(report.final_loss() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trainer {
    params: TrainParams,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    #[must_use]
    pub fn new(params: TrainParams) -> Self {
        Self { params }
    }

    /// The hyper-parameters this trainer runs with.
    #[must_use]
    pub fn params(&self) -> &TrainParams {
        &self.params
    }

    /// Trains `mlp` in place on `data`, returning per-epoch losses.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyDataset`] for empty data,
    /// [`NnError::DimensionMismatch`] if the dataset widths do not match the
    /// network, and [`NnError::InvalidParam`] for bad hyper-parameters.
    pub fn train(&self, mlp: &mut Mlp, data: &NnDataset) -> Result<TrainReport> {
        self.params.validate()?;
        if data.is_empty() {
            return Err(NnError::EmptyDataset);
        }
        if data.input_dim() != mlp.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: mlp.input_dim(),
                actual: data.input_dim(),
                port: "training inputs",
            });
        }
        if data.output_dim() != mlp.output_dim() {
            return Err(NnError::DimensionMismatch {
                expected: mlp.output_dim(),
                actual: data.output_dim(),
                port: "training targets",
            });
        }

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let batch = self.params.batch_size.min(data.len());

        let shape_w: Vec<usize> = mlp.layers().iter().map(|l| l.weights().len()).collect();
        let shape_b: Vec<usize> = mlp.layers().iter().map(|l| l.biases().len()).collect();
        let mut vel_w: Vec<Vec<f64>> = shape_w.iter().map(|&n| vec![0.0; n]).collect();
        let mut vel_b: Vec<Vec<f64>> = shape_b.iter().map(|&n| vec![0.0; n]).collect();
        // Gradient accumulators and the batch workspaces are allocated once
        // and zero-filled per mini-batch, so the epoch loop runs
        // allocation-free once every buffer has seen its peak shape.
        let mut grads_w: Vec<Vec<f64>> = shape_w.iter().map(|&n| vec![0.0; n]).collect();
        let mut grads_b: Vec<Vec<f64>> = shape_b.iter().map(|&n| vec![0.0; n]).collect();
        let mut scratch = BatchScratch::new(mlp.layers().len());

        // Resolved once per run; lane dispatch never changes the gradient
        // bits (see `simd`), only how fast they are accumulated.
        let isa = simd::active_isa();
        simd::note_dispatch(isa);

        let mut report = TrainReport::default();
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                for g in grads_w.iter_mut().chain(grads_b.iter_mut()) {
                    g.fill(0.0);
                }
                accumulate_batch(
                    mlp,
                    data,
                    chunk,
                    isa,
                    &mut scratch,
                    &mut grads_w,
                    &mut grads_b,
                    &mut epoch_loss,
                );
                let scale = 1.0 / chunk.len() as f64;
                for g in grads_w.iter_mut().chain(grads_b.iter_mut()) {
                    for v in g.iter_mut() {
                        *v *= scale;
                    }
                }
                mlp.apply_gradients(
                    &grads_w,
                    &grads_b,
                    &mut vel_w,
                    &mut vel_b,
                    self.params.learning_rate,
                    self.params.momentum,
                );
            }
            report.epoch_losses.push(epoch_loss / data.len() as f64);
        }
        Ok(report)
    }
}

/// Reusable workspaces for the batched forward/backward pass. Every buffer
/// is a grow-only [`Matrix`], so a scratch reused across mini-batches stops
/// allocating once it has seen the largest batch shape.
#[derive(Debug)]
struct BatchScratch {
    batch_in: Matrix,
    batch_tgt: Matrix,
    acts: Vec<Matrix>,
    delta: Matrix,
    prev_delta: Matrix,
    lanes: LaneScratch,
}

impl BatchScratch {
    fn new(n_layers: usize) -> Self {
        Self {
            batch_in: Matrix::default(),
            batch_tgt: Matrix::default(),
            acts: vec![Matrix::default(); n_layers],
            delta: Matrix::default(),
            prev_delta: Matrix::default(),
            lanes: LaneScratch::default(),
        }
    }
}

/// Runs one batched forward/backward pass over the samples in `chunk`,
/// adding gradients into the accumulators and per-sample losses into
/// `epoch_loss`.
///
/// Bit-exactness contract: the forward trace goes through the cache-blocked
/// kernel (per-row identical to the serial forward), and every gradient and
/// loss accumulator receives its per-sample contributions with the
/// innermost loop over samples in `chunk` order — the exact summation
/// sequence of the per-sample trainer. The resulting parameter trajectory
/// is therefore bit-identical to running `accumulate_example` sample by
/// sample. The backward pass vectorizes over the weight-row axis (`j`)
/// with a broadcast per-sample scalar, which leaves every accumulator
/// cell's contribution order untouched, so the SIMD and scalar builds
/// follow the same trajectory bit for bit.
#[allow(clippy::too_many_arguments)]
fn accumulate_batch(
    mlp: &Mlp,
    data: &NnDataset,
    chunk: &[usize],
    isa: Isa,
    scratch: &mut BatchScratch,
    grads_w: &mut [Vec<f64>],
    grads_b: &mut [Vec<f64>],
    epoch_loss: &mut f64,
) {
    let bsz = chunk.len();
    let layers = mlp.layers();
    let BatchScratch { batch_in, batch_tgt, acts, delta, prev_delta, lanes } = scratch;

    // Gather the shuffled samples into contiguous rows.
    batch_in.resize(bsz, mlp.input_dim());
    batch_tgt.resize(bsz, mlp.output_dim());
    for (r, &i) in chunk.iter().enumerate() {
        batch_in.row_mut(r).copy_from_slice(data.input(i));
        batch_tgt.row_mut(r).copy_from_slice(data.target(i));
    }

    // Batched forward trace: acts[li] holds layer li's activated outputs
    // for every sample in the batch.
    for li in 0..layers.len() {
        let (done, todo) = acts.split_at_mut(li);
        let src: &[f64] = if li == 0 { batch_in.as_slice() } else { done[li - 1].as_slice() };
        let dst = &mut todo[0];
        dst.resize(bsz, layers[li].out_dim());
        layers[li].forward_batch_into(bsz, src, dst.as_mut_slice(), isa, lanes);
    }

    // Output-layer deltas and losses, samples in chunk order.
    let last = layers.len() - 1;
    let out_act = layers[last].activation();
    delta.resize(bsz, layers[last].out_dim());
    for r in 0..bsz {
        let yh_row = acts[last].row(r);
        let y_row = batch_tgt.row(r);
        let d_row = delta.row_mut(r);
        for (o, (&yh, &y)) in yh_row.iter().zip(y_row).enumerate() {
            d_row[o] = (yh - y) * out_act.derivative_from_output(yh);
        }
        *epoch_loss +=
            yh_row.iter().zip(y_row).map(|(&yh, &y)| 0.5 * (yh - y) * (yh - y)).sum::<f64>();
    }

    // Backward, output layer first; within each layer the sample loop is
    // innermost-major so each accumulator cell sees contributions in the
    // per-sample trainer's order.
    for li in (0..layers.len()).rev() {
        let layer = &layers[li];
        let in_dim = layer.in_dim();
        let layer_input: &Matrix = if li == 0 { batch_in } else { &acts[li - 1] };
        let gw = &mut grads_w[li];
        let gb = &mut grads_b[li];
        for r in 0..bsz {
            let d = delta.row(r);
            let x = layer_input.row(r);
            for (o, &dv) in d.iter().enumerate() {
                gb[o] += dv;
                let row = o * in_dim;
                // gw[row + j] += dv * x[j] across the whole weight row —
                // one contribution per cell, same order as the scalar loop.
                simd::axpy_dispatch(isa, dv, x, &mut gw[row..row + in_dim]);
            }
        }
        if li > 0 {
            let prev_act = layers[li - 1].activation();
            prev_delta.resize(bsz, in_dim);
            for r in 0..bsz {
                let d = delta.row(r);
                let x = layer_input.row(r);
                let pd = prev_delta.row_mut(r);
                // pd[j] = (Σ_o w[o*in+j] * d[o]) * act'(x[j]), with the o
                // sum accumulated ascending per cell — the per-sample
                // trainer's exact operation sequence, vectorized over j.
                pd.fill(0.0);
                for (o, &dv) in d.iter().enumerate() {
                    let wrow = &layer.weights()[o * in_dim..(o + 1) * in_dim];
                    simd::xpay_dispatch(isa, dv, wrow, pd);
                }
                for (pd_j, &xv) in pd.iter_mut().zip(x) {
                    *pd_j *= prev_act.derivative_from_output(xv);
                }
            }
            std::mem::swap(delta, prev_delta);
        }
    }
}

/// Runs one forward/backward pass, adding this example's gradients into the
/// accumulators and returning its squared-error loss.
///
/// This is the pre-batching reference implementation; the tests pin
/// [`accumulate_batch`]'s trajectory bit-exactly against it.
#[cfg(test)]
fn accumulate_example(
    mlp: &Mlp,
    input: &[f64],
    target: &[f64],
    grads_w: &mut [Vec<f64>],
    grads_b: &mut [Vec<f64>],
) -> f64 {
    let acts = mlp.forward_trace(input);
    let output = acts.last().expect("trace is nonempty");

    // Output-layer delta for MSE loss: (y_hat - y) * act'(y_hat).
    let mut delta: Vec<f64> = output
        .iter()
        .zip(target)
        .map(|(&yh, &y)| {
            let act = mlp.layers().last().expect("at least one layer").activation();
            (yh - y) * act.derivative_from_output(yh)
        })
        .collect();
    let loss: f64 =
        output.iter().zip(target).map(|(&yh, &y)| 0.5 * (yh - y) * (yh - y)).sum::<f64>();

    for li in (0..mlp.layers().len()).rev() {
        let layer = &mlp.layers()[li];
        let layer_input = &acts[li];
        for o in 0..layer.out_dim() {
            grads_b[li][o] += delta[o];
            let row = o * layer.in_dim();
            for (j, &x) in layer_input.iter().enumerate() {
                grads_w[li][row + j] += delta[o] * x;
            }
        }
        if li > 0 {
            let prev_act = mlp.layers()[li - 1].activation();
            let mut prev_delta = vec![0.0; layer.in_dim()];
            for (j, pd) in prev_delta.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (o, &d) in delta.iter().enumerate() {
                    acc += layer.weights()[o * layer.in_dim() + j] * d;
                }
                *pd = acc * prev_act.derivative_from_output(layer_input[j]);
            }
            delta = prev_delta;
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    fn xor_data() -> NnDataset {
        NnDataset::from_rows(
            2,
            1,
            vec![
                (vec![0.0, 0.0], vec![0.0]),
                (vec![0.0, 1.0], vec![1.0]),
                (vec![1.0, 0.0], vec![1.0]),
                (vec![1.0, 1.0], vec![0.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn learns_xor() {
        let data = xor_data();
        let mut mlp = Mlp::new(&[2, 6, 1], Activation::Tanh, 11).unwrap();
        let params = TrainParams {
            epochs: 800,
            learning_rate: 0.3,
            batch_size: 4,
            ..TrainParams::default()
        };
        let report = Trainer::new(params).train(&mut mlp, &data).unwrap();
        assert!(report.final_loss() < 0.01, "loss {}", report.final_loss());
        for (x, y) in data.iter() {
            let out = mlp.forward(x).unwrap()[0];
            assert!((out - y[0]).abs() < 0.25, "xor({x:?}) = {out}, want {}", y[0]);
        }
    }

    #[test]
    fn loss_decreases_on_smooth_target() {
        let data = NnDataset::from_fn(1, 1, 128, |i, x, y| {
            x[0] = i as f64 / 128.0;
            y[0] = (x[0] * 6.0).sin() * 0.5 + 0.5;
        })
        .unwrap();
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Sigmoid, 2).unwrap();
        let report = Trainer::new(TrainParams::default()).train(&mut mlp, &data).unwrap();
        let first = report.epoch_losses()[0];
        assert!(report.final_loss() < first * 0.5, "{first} -> {}", report.final_loss());
    }

    #[test]
    fn rejects_mismatched_dataset() {
        let data = xor_data();
        let mut mlp = Mlp::new(&[3, 4, 1], Activation::Sigmoid, 0).unwrap();
        assert!(matches!(
            Trainer::new(TrainParams::default()).train(&mut mlp, &data),
            Err(NnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty_dataset() {
        let data = NnDataset::new(2, 1).unwrap();
        let mut mlp = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 0).unwrap();
        assert!(matches!(
            Trainer::new(TrainParams::default()).train(&mut mlp, &data),
            Err(NnError::EmptyDataset)
        ));
    }

    #[test]
    fn rejects_bad_hyper_parameters() {
        let data = xor_data();
        let mut mlp = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 0).unwrap();
        for params in [
            TrainParams { epochs: 0, ..TrainParams::default() },
            TrainParams { learning_rate: 0.0, ..TrainParams::default() },
            TrainParams { learning_rate: f64::NAN, ..TrainParams::default() },
            TrainParams { momentum: 1.0, ..TrainParams::default() },
            TrainParams { batch_size: 0, ..TrainParams::default() },
        ] {
            assert!(matches!(
                Trainer::new(params).train(&mut mlp, &data),
                Err(NnError::InvalidParam { .. })
            ));
        }
    }

    #[test]
    fn batched_backprop_matches_per_sample_trainer_bitwise() {
        // Reference: the pre-batching per-sample training loop, reproduced
        // verbatim on top of `accumulate_example`. The batched trainer must
        // follow the exact same parameter trajectory, bit for bit.
        let data = NnDataset::from_fn(3, 2, 57, |i, x, y| {
            let t = i as f64 / 57.0;
            x[0] = t;
            x[1] = (t * 3.0).sin();
            x[2] = 1.0 - t;
            y[0] = t * t;
            y[1] = (t * 5.0).cos() * 0.5;
        })
        .unwrap();
        let params = TrainParams { epochs: 3, batch_size: 8, ..TrainParams::default() };
        let mut batched = Mlp::new(&[3, 7, 5, 2], Activation::Sigmoid, 21).unwrap();
        let mut reference = batched.clone();

        let report = Trainer::new(params.clone()).train(&mut batched, &data).unwrap();

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let batch = params.batch_size.min(data.len());
        let shape_w: Vec<usize> = reference.layers().iter().map(|l| l.weights().len()).collect();
        let shape_b: Vec<usize> = reference.layers().iter().map(|l| l.biases().len()).collect();
        let mut vel_w: Vec<Vec<f64>> = shape_w.iter().map(|&n| vec![0.0; n]).collect();
        let mut vel_b: Vec<Vec<f64>> = shape_b.iter().map(|&n| vec![0.0; n]).collect();
        let mut ref_losses = Vec::new();
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let mut grads_w: Vec<Vec<f64>> = shape_w.iter().map(|&n| vec![0.0; n]).collect();
                let mut grads_b: Vec<Vec<f64>> = shape_b.iter().map(|&n| vec![0.0; n]).collect();
                for &i in chunk {
                    epoch_loss += accumulate_example(
                        &reference,
                        data.input(i),
                        data.target(i),
                        &mut grads_w,
                        &mut grads_b,
                    );
                }
                let scale = 1.0 / chunk.len() as f64;
                for g in grads_w.iter_mut().chain(grads_b.iter_mut()) {
                    for v in g.iter_mut() {
                        *v *= scale;
                    }
                }
                reference.apply_gradients(
                    &grads_w,
                    &grads_b,
                    &mut vel_w,
                    &mut vel_b,
                    params.learning_rate,
                    params.momentum,
                );
            }
            ref_losses.push(epoch_loss / data.len() as f64);
        }

        let batched_bits: Vec<u64> = batched.to_flat_params().iter().map(|x| x.to_bits()).collect();
        let reference_bits: Vec<u64> =
            reference.to_flat_params().iter().map(|x| x.to_bits()).collect();
        assert_eq!(batched_bits, reference_bits, "weights must match the per-sample trainer");
        let loss_bits: Vec<u64> = report.epoch_losses().iter().map(|x| x.to_bits()).collect();
        let ref_loss_bits: Vec<u64> = ref_losses.iter().map(|x| x.to_bits()).collect();
        assert_eq!(loss_bits, ref_loss_bits, "per-epoch losses must match bitwise");
    }

    #[test]
    fn training_is_deterministic() {
        let data = xor_data();
        let run = || {
            let mut mlp = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 7).unwrap();
            Trainer::new(TrainParams::default()).train(&mut mlp, &data).unwrap();
            mlp.to_flat_params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Numerical check of the backward pass on a tiny network.
        let mlp = Mlp::new(&[2, 3, 1], Activation::Sigmoid, 4).unwrap();
        let input = [0.3, -0.7];
        let target = [0.9];

        let shape_w: Vec<usize> = mlp.layers().iter().map(|l| l.weights().len()).collect();
        let shape_b: Vec<usize> = mlp.layers().iter().map(|l| l.biases().len()).collect();
        let mut gw: Vec<Vec<f64>> = shape_w.iter().map(|&n| vec![0.0; n]).collect();
        let mut gb: Vec<Vec<f64>> = shape_b.iter().map(|&n| vec![0.0; n]).collect();
        accumulate_example(&mlp, &input, &target, &mut gw, &mut gb);

        let loss_at = |flat: &[f64]| {
            let mut m = mlp.clone();
            m.set_flat_params(flat).unwrap();
            let out = m.forward(&input).unwrap();
            0.5 * (out[0] - target[0]) * (out[0] - target[0])
        };
        let base = mlp.to_flat_params();
        let h = 1e-6;
        // Flat layout is layer0 weights, layer0 biases, layer1 weights, ...
        let mut flat_grad = Vec::new();
        for li in 0..gw.len() {
            flat_grad.extend_from_slice(&gw[li]);
            flat_grad.extend_from_slice(&gb[li]);
        }
        for (k, &g) in flat_grad.iter().enumerate() {
            let mut plus = base.clone();
            plus[k] += h;
            let mut minus = base.clone();
            minus[k] -= h;
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * h);
            assert!((numeric - g).abs() < 1e-4, "param {k}: numeric {numeric} vs analytic {g}");
        }
    }
}
