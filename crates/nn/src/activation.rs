use std::fmt;

/// Neuron activation functions supported by [`crate::Mlp`] layers.
///
/// The NPU-style accelerator in the paper uses sigmoid neurons; the other
/// variants are provided for topology experiments and for identity output
/// layers in regression settings.
///
/// # Examples
///
/// ```
/// use rumba_nn::Activation;
///
/// assert_eq!(Activation::Identity.apply(0.25), 0.25);
/// assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    #[default]
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Pass-through, `x`. Typical for regression output layers.
    Identity,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation expressed in terms of the *activated*
    /// output `y = apply(x)`, which is the form back-propagation needs.
    ///
    /// ```
    /// use rumba_nn::Activation;
    ///
    /// let y = Activation::Sigmoid.apply(0.3);
    /// let d = Activation::Sigmoid.derivative_from_output(y);
    /// assert!((d - y * (1.0 - y)).abs() < 1e-15);
    /// ```
    #[must_use]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// All supported activations, useful for exhaustive sweeps in tests.
    #[must_use]
    pub fn all() -> [Activation; 4] {
        [Activation::Sigmoid, Activation::Tanh, Activation::Relu, Activation::Identity]
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_saturation() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(40.0) > 0.999_999);
        assert!(Activation::Sigmoid.apply(-40.0) < 1e-6);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in Activation::all() {
            for &x in &[-1.5, -0.2, 0.1, 0.9, 2.0] {
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act} derivative mismatch at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn tanh_is_odd() {
        for &x in &[0.3, 1.0, 2.5] {
            assert!((Activation::Tanh.apply(x) + Activation::Tanh.apply(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Activation::Sigmoid.to_string(), "sigmoid");
        assert_eq!(Activation::Identity.to_string(), "identity");
    }
}
