use crate::{Activation, NnDataset, Result, TrainParams, TrainedModel};

/// One topology evaluated during search.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyCandidate {
    /// Full layer sizes including input and output widths.
    pub layers: Vec<usize>,
    /// Mean relative error on the validation set.
    pub validation_error: f64,
    /// Ops per evaluation (weight MACs plus per-output bias adds and
    /// activation evaluations) — the cost proxy the search minimizes
    /// after accuracy.
    pub mac_count: usize,
}

/// Outcome of a [`TopologySearch`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySearchReport {
    /// Every candidate evaluated, in search order.
    pub candidates: Vec<TopologyCandidate>,
    /// Index into `candidates` of the selected topology.
    pub selected: usize,
}

impl TopologySearchReport {
    /// The winning candidate.
    #[must_use]
    pub fn best(&self) -> &TopologyCandidate {
        &self.candidates[self.selected]
    }
}

/// The paper's offline "accelerator trainer": searches the topology space
/// (at most 2 hidden layers, at most 32 neurons per layer — the same
/// restriction as the NPU work) and selects the *smallest* network whose
/// validation error stays under a cap.
///
/// If no candidate meets the cap, the most accurate candidate wins.
///
/// # Examples
///
/// ```
/// use rumba_nn::{NnDataset, TopologySearch};
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// let data = NnDataset::from_fn(1, 1, 200, |i, x, y| {
///     x[0] = i as f64 / 200.0;
///     y[0] = x[0] * x[0];
/// })?;
/// let search = TopologySearch::new(0.05).with_hidden_sizes(&[2, 4]);
/// let (model, report) = search.run(&data, 42)?;
/// assert!(model.mlp().mac_count() <= report.candidates.iter().map(|c| c.mac_count).max().unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySearch {
    error_cap: f64,
    hidden_sizes: Vec<usize>,
    max_hidden_layers: usize,
    activation: Activation,
    params: TrainParams,
    validation_fraction: f64,
}

impl TopologySearch {
    /// Creates a search that accepts topologies with validation mean
    /// relative error below `error_cap`.
    #[must_use]
    pub fn new(error_cap: f64) -> Self {
        Self {
            error_cap,
            hidden_sizes: vec![1, 2, 4, 8, 16, 32],
            max_hidden_layers: 2,
            activation: Activation::Sigmoid,
            params: TrainParams::default(),
            validation_fraction: 0.25,
        }
    }

    /// Restricts the per-layer neuron counts considered.
    #[must_use]
    pub fn with_hidden_sizes(mut self, sizes: &[usize]) -> Self {
        self.hidden_sizes = sizes.to_vec();
        self
    }

    /// Sets the maximum number of hidden layers (paper limit: 2).
    #[must_use]
    pub fn with_max_hidden_layers(mut self, n: usize) -> Self {
        self.max_hidden_layers = n;
        self
    }

    /// Overrides training hyper-parameters used for every candidate.
    #[must_use]
    pub fn with_train_params(mut self, params: TrainParams) -> Self {
        self.params = params;
        self
    }

    /// Enumerates the candidate topologies for the given I/O widths,
    /// smallest MAC count first.
    #[must_use]
    pub fn enumerate(&self, input_dim: usize, output_dim: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        // Zero hidden layers: direct input->output mapping.
        out.push(vec![input_dim, output_dim]);
        for &h1 in &self.hidden_sizes {
            if self.max_hidden_layers >= 1 {
                out.push(vec![input_dim, h1, output_dim]);
            }
            if self.max_hidden_layers >= 2 {
                for &h2 in &self.hidden_sizes {
                    out.push(vec![input_dim, h1, h2, output_dim]);
                }
            }
        }
        out.sort_by_key(|t| mac_count_of(t));
        out
    }

    /// Trains every candidate on a train split and returns the selected
    /// model plus the full report.
    ///
    /// # Errors
    ///
    /// Propagates dataset and training errors; an empty dataset is rejected
    /// with [`crate::NnError::EmptyDataset`].
    pub fn run(&self, data: &NnDataset, seed: u64) -> Result<(TrainedModel, TopologySearchReport)> {
        if data.is_empty() {
            return Err(crate::NnError::EmptyDataset);
        }
        let n = data.len();
        if n < 2 {
            // One row cannot be split into disjoint train/validation sets;
            // the former fallback silently trained on the full dataset and
            // validated on a subset of it, selecting on training error.
            return Err(crate::NnError::InvalidParam {
                name: "dataset rows",
                value: format!("{n} (the validation split needs at least 2)"),
            });
        }
        let (train_idx, val_idx) = split_indices(n, self.validation_fraction);
        let (train, val) = (data.subset(&train_idx), data.subset(&val_idx));

        let topos = self.enumerate(data.input_dim(), data.output_dim());
        let pool = rumba_parallel::ThreadPool::new();

        // Bounded speculative training: candidates train in MAC-sorted
        // waves of one candidate per thread. Each candidate's RNG stream is
        // `seed ^ index`, independent of every other candidate, so a wave
        // can train concurrently; selection (including the legacy early
        // exit) is then replayed serially over the wave's results, which
        // makes the report and the chosen model bit-identical to the
        // serial walk for every thread count. Once the stopping point is
        // known, no further wave launches — at most one wave (minus the
        // winner) is ever wasted, instead of the whole candidate list.
        // With one thread the wave is a single candidate and nothing is
        // speculated.
        let wave = pool.threads().max(1);
        let mut candidates = Vec::new();
        let mut best_model: Option<TrainedModel> = None;
        let mut best_idx = 0usize;
        let mut found_under_cap = false;
        let mut stopped = false;
        let mut start = 0usize;

        while start < topos.len() && !stopped {
            let end = (start + wave).min(topos.len());
            let fit_one = |ci: usize, topo: &Vec<usize>| -> Result<(TrainedModel, f64)> {
                let model = TrainedModel::fit(
                    topo,
                    self.activation,
                    &train,
                    &self.params,
                    seed ^ ci as u64,
                )?;
                let err = model.mean_relative_error(&val)?;
                Ok((model, err))
            };
            let wave_results: Vec<Result<(TrainedModel, f64)>> = if pool.threads() > 1 {
                pool.par_map_indexed(&topos[start..end], |off, topo| fit_one(start + off, topo))
            } else {
                topos[start..end]
                    .iter()
                    .enumerate()
                    .map(|(off, topo)| fit_one(start + off, topo))
                    .collect()
            };
            for (off, result) in wave_results.into_iter().enumerate() {
                let ci = start + off;
                let (model, err) = result?;
                candidates.push(TopologyCandidate {
                    layers: topos[ci].clone(),
                    validation_error: err,
                    mac_count: mac_count_of(&topos[ci]),
                });
                let better = match &best_model {
                    None => true,
                    Some(_) if !found_under_cap && err <= self.error_cap => true,
                    Some(_) if !found_under_cap => err < candidates[best_idx].validation_error,
                    Some(_) => false, // already have the smallest under-cap network
                };
                if better {
                    best_idx = ci;
                    best_model = Some(model);
                    if err <= self.error_cap {
                        found_under_cap = true;
                    }
                }
                if found_under_cap && best_idx != ci {
                    // Candidates are MAC-sorted; once one passes the cap,
                    // no later (larger) candidate can be preferred.
                    stopped = true;
                    break;
                }
            }
            start = end;
        }

        Ok((
            best_model.expect("at least one candidate is always evaluated"),
            TopologySearchReport { candidates, selected: best_idx },
        ))
    }
}

/// Strided disjoint train/validation index split. Every `k * n / n_val`
/// index (distinct because `n_val < n`) goes to validation; everything
/// else trains. Requires `n >= 2` so both halves are non-empty.
fn split_indices(n: usize, validation_fraction: f64) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(n >= 2);
    let n_val = ((n as f64 * validation_fraction) as usize).clamp(1, n - 1);
    let val_idx: Vec<usize> = (0..n_val).map(|k| k * n / n_val).collect();
    let val_set: std::collections::BTreeSet<usize> = val_idx.iter().copied().collect();
    let train_idx: Vec<usize> = (0..n).filter(|i| !val_set.contains(i)).collect();
    (train_idx, val_idx)
}

/// Per-evaluation op count of a topology — the search's cost proxy. Each
/// output element of a layer costs `in` weight MACs, one bias add, and one
/// activation evaluation (the exact serial reduction the datapath
/// performs), so a layer is `out * (in + 2)` ops. Counting only the weight
/// MACs (as [`crate::Mlp::mac_count`] does for the accelerator cycle
/// model) undercounts depth: two same-weight-MAC candidates of different
/// depths would tie even though the deeper one performs more bias/
/// activation work per evaluation.
fn mac_count_of(topology: &[usize]) -> usize {
    topology.windows(2).map(|w| w[1] * (w[0] + 2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_is_mac_sorted_and_bounded() {
        let s = TopologySearch::new(0.1).with_hidden_sizes(&[2, 8, 32]);
        let topos = s.enumerate(3, 1);
        assert!(topos.windows(2).all(|w| mac_count_of(&w[0]) <= mac_count_of(&w[1])));
        for t in &topos {
            assert!(t.len() <= 4, "at most two hidden layers: {t:?}");
            assert!(t[1..t.len() - 1].iter().all(|&h| h <= 32));
        }
    }

    #[test]
    fn picks_small_network_for_easy_target() {
        let data = NnDataset::from_fn(1, 1, 160, |i, x, y| {
            x[0] = i as f64 / 160.0;
            y[0] = 0.4 * x[0] + 0.2;
        })
        .unwrap();
        let search = TopologySearch::new(0.05).with_hidden_sizes(&[2, 4, 8, 16]);
        let (model, report) = search.run(&data, 1).unwrap();
        assert!(report.best().validation_error <= 0.05);
        // A line should not need a 2x16 hidden stack.
        assert!(model.mlp().mac_count() <= 64, "chose {:?}", model.mlp().topology());
    }

    #[test]
    fn falls_back_to_most_accurate_when_cap_unreachable() {
        let data = NnDataset::from_fn(1, 1, 160, |i, x, y| {
            x[0] = i as f64 / 160.0;
            y[0] = (x[0] * 40.0).sin();
        })
        .unwrap();
        // Impossible cap: selection must still return something sensible.
        let search = TopologySearch::new(1e-9).with_hidden_sizes(&[2, 4]);
        let (_, report) = search.run(&data, 1).unwrap();
        let min_err =
            report.candidates.iter().map(|c| c.validation_error).fold(f64::INFINITY, f64::min);
        assert_eq!(report.best().validation_error, min_err);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let data = NnDataset::new(1, 1).unwrap();
        assert!(TopologySearch::new(0.1).run(&data, 0).is_err());
    }

    #[test]
    fn single_row_dataset_is_rejected_not_overlapped() {
        // Regression: with one row the old fallback trained on the full
        // dataset and validated on the same row — selection on training
        // error. A disjoint split is impossible, so the run must refuse.
        let data = NnDataset::from_fn(1, 1, 1, |_, x, y| {
            x[0] = 0.5;
            y[0] = 0.25;
        })
        .unwrap();
        let err = TopologySearch::new(0.1).run(&data, 0).unwrap_err();
        assert!(matches!(err, crate::NnError::InvalidParam { name: "dataset rows", .. }));
    }

    #[test]
    fn validation_split_is_disjoint_and_covering_at_every_small_n() {
        for n in 2..64 {
            for frac in [0.1, 0.25, 0.5, 0.9] {
                let (train, val) = split_indices(n, frac);
                assert!(!train.is_empty(), "n={n} frac={frac}");
                assert!(!val.is_empty(), "n={n} frac={frac}");
                let t: std::collections::BTreeSet<usize> = train.iter().copied().collect();
                let v: std::collections::BTreeSet<usize> = val.iter().copied().collect();
                assert!(t.is_disjoint(&v), "overlap at n={n} frac={frac}");
                assert_eq!(t.len() + v.len(), n, "split must cover every row");
                assert!(t.union(&v).all(|&i| i < n));
            }
        }
    }

    #[test]
    fn op_count_breaks_weight_mac_ties() {
        // [1,12,1] and [1,4,4,1] tie at 24 weight MACs, but carry 13 vs 9
        // neurons' worth of bias adds and activations — the old
        // weight-MACs-only count could not tell them apart.
        let wide = mac_count_of(&[1, 12, 1]);
        let deep = mac_count_of(&[1, 4, 4, 1]);
        assert_eq!(wide, 24 + 2 * 13, "24 weight MACs + 13 bias adds + 13 activations");
        assert_eq!(deep, 24 + 2 * 9, "24 weight MACs + 9 bias adds + 9 activations");
        assert_ne!(wide, deep, "the op count must break the weight-MAC tie");
    }

    #[test]
    fn report_selected_in_bounds() {
        let data = NnDataset::from_fn(1, 1, 64, |i, x, y| {
            x[0] = i as f64 / 64.0;
            y[0] = x[0];
        })
        .unwrap();
        let (_, report) = TopologySearch::new(0.05).with_hidden_sizes(&[2]).run(&data, 0).unwrap();
        assert!(report.selected < report.candidates.len());
    }
}
