//! From-scratch multi-layer perceptron used as the function approximator of
//! the NPU-style accelerator in the Rumba reproduction.
//!
//! The original paper obtained accelerator outputs by training networks with
//! the pyBrain library; this crate replaces that dependency with a small,
//! deterministic, dependency-free implementation:
//!
//! - [`Mlp`]: dense feed-forward network with per-layer activations,
//! - [`Trainer`]: mini-batch stochastic gradient descent with momentum,
//! - [`NnDataset`]: flat, row-major training data container,
//! - [`Normalizer`]: min-max feature scaling recorded at training time,
//! - [`Matrix`]/[`Scratch`]: contiguous row-major batches plus reusable
//!   workspaces backing the zero-allocation, cache-blocked batched paths,
//! - [`TrainedModel`]: normalizing wrapper bundling the above,
//! - [`TopologySearch`]: the paper's "accelerator trainer" that picks the
//!   smallest topology meeting an error cap (at most two hidden layers of at
//!   most 32 neurons, the same restriction as the NPU work).
//!
//! Everything is seeded explicitly, so a given topology trained on a given
//! dataset reproduces bit-for-bit.
//!
//! # Examples
//!
//! Train a tiny network on a 1-D function and evaluate it:
//!
//! ```
//! use rumba_nn::{Activation, Mlp, NnDataset, TrainParams, Trainer};
//!
//! # fn main() -> Result<(), rumba_nn::NnError> {
//! let data = NnDataset::from_fn(1, 1, 256, |i, x, y| {
//!     let t = i as f64 / 256.0;
//!     x[0] = t;
//!     y[0] = (t * std::f64::consts::PI).sin();
//! })?;
//! let mut mlp = Mlp::new(&[1, 8, 1], Activation::Sigmoid, 7)?;
//! let report = Trainer::new(TrainParams::default()).train(&mut mlp, &data)?;
//! assert!(report.final_loss() < 0.05);
//! # Ok(())
//! # }
//! ```

mod activation;
mod config_words;
mod dataset;
mod error;
mod fixed;
mod matrix;
mod mlp;
mod model;
mod simd;
mod topology;
mod trainer;

pub use activation::Activation;
pub use config_words::{decode_model, encode_model, MODEL_MAGIC};
pub use dataset::{NnDataset, Normalizer};
pub use error::NnError;
pub use fixed::FixedModel;
pub use matrix::{Matrix, MatrixView, MatrixViewMut, Scratch};
pub use mlp::{Layer, Mlp};
pub use model::TrainedModel;
pub use simd::{active_isa, detected_isa, set_simd_override, simd_mode, Isa, SimdMode};
pub use topology::{TopologyCandidate, TopologySearch, TopologySearchReport};
pub use trainer::{TrainParams, TrainReport, Trainer};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NnError>;
