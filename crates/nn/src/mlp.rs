use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::LaneScratch;
use crate::simd::{self, Isa};
use crate::{Activation, Matrix, MatrixView, NnError, Result, Scratch};

/// Cache-block tile sizes for the batched layer kernel: `ROW_BLOCK` batch
/// rows × `COL_BLOCK` output neurons per tile, sized so one tile's weight
/// rows and input rows stay resident in L1 while they are reused.
const ROW_BLOCK: usize = 32;
const COL_BLOCK: usize = 16;

/// One dense layer: `outputs = act(W * inputs + b)` with `W` stored row-major
/// (`out_dim × in_dim`).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f64>,
    biases: Vec<f64>,
    activation: Activation,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform initialization keeps sigmoid layers out of
        // saturation at the start of training.
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weights = (0..in_dim * out_dim).map(|_| rng.gen_range(-bound..bound)).collect();
        let biases = vec![0.0; out_dim];
        Self { in_dim, out_dim, weights, biases, activation }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width (number of neurons).
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// This layer's activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Row-major weight matrix (`out_dim × in_dim`).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Bias vector (`out_dim`).
    #[must_use]
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Number of multiply-accumulate operations one evaluation performs.
    #[must_use]
    pub fn mac_count(&self) -> usize {
        self.in_dim * self.out_dim
    }

    fn forward_into(&self, input: &[f64], output: &mut [f64]) {
        self.forward_batch_into(1, input, output, Isa::Scalar, &mut LaneScratch::default());
    }

    /// Evaluates one layer on a limited-precision datapath: weights, biases,
    /// and the activated outputs are all rounded to a `2^-bits` grid — the
    /// behaviour of an analog or reduced-width digital implementation.
    fn forward_into_quantized(&self, input: &[f64], output: &mut [f64], bits: u32) {
        self.forward_batch_into_quantized(
            1,
            input,
            output,
            bits,
            Isa::Scalar,
            &mut LaneScratch::default(),
        );
    }

    /// Cache-blocked batched evaluation of `n` rows (`input` is flat
    /// row-major `n × in_dim`, `output` `n × out_dim`).
    ///
    /// Blocking only reorders *which* `(row, neuron)` output element is
    /// produced when; each element's inner dot product is the exact serial
    /// loop (bias first, then ascending input index), so every output is
    /// bit-identical to the per-sample path regardless of tile shape. The
    /// SIMD path keeps the same contract by mapping vector lanes to batch
    /// rows (one whole accumulator per lane — see `simd`), so dispatching
    /// on `isa` never changes the produced bits, only the speed.
    pub(crate) fn forward_batch_into(
        &self,
        n: usize,
        input: &[f64],
        output: &mut [f64],
        isa: Isa,
        lanes: &mut LaneScratch,
    ) {
        debug_assert_eq!(input.len(), n * self.in_dim);
        debug_assert_eq!(output.len(), n * self.out_dim);
        if isa.lanes_f64() > 1 && n >= isa.lanes_f64() {
            let LaneScratch { xt, yt, .. } = lanes;
            tile_lanes(
                self.in_dim,
                self.out_dim,
                self.activation,
                n,
                input,
                output,
                isa,
                xt,
                yt,
                &self.weights,
                &self.biases,
                None,
            );
            return;
        }
        for r0 in (0..n).step_by(ROW_BLOCK) {
            let r1 = (r0 + ROW_BLOCK).min(n);
            for o0 in (0..self.out_dim).step_by(COL_BLOCK) {
                let o1 = (o0 + COL_BLOCK).min(self.out_dim);
                for r in r0..r1 {
                    let input_row = &input[r * self.in_dim..(r + 1) * self.in_dim];
                    let output_row = &mut output[r * self.out_dim..(r + 1) * self.out_dim];
                    for (o, out_val) in (o0..).zip(output_row[o0..o1].iter_mut()) {
                        let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                        let mut acc = self.biases[o];
                        for (w, x) in row.iter().zip(input_row) {
                            acc += w * x;
                        }
                        *out_val = self.activation.apply(acc);
                    }
                }
            }
        }
    }

    /// Quantized counterpart of [`Layer::forward_batch_into`]; same tiling,
    /// same per-element rounding as the serial quantized path.
    ///
    /// The grid-rounded weights and biases are hoisted into `lanes` once
    /// per call instead of re-deriving `q(w)` for every `(row, element)`
    /// pair in the inner loop; the grid is a pure per-element function, so
    /// the output bits are unchanged.
    pub(crate) fn forward_batch_into_quantized(
        &self,
        n: usize,
        input: &[f64],
        output: &mut [f64],
        bits: u32,
        isa: Isa,
        lanes: &mut LaneScratch,
    ) {
        debug_assert_eq!(input.len(), n * self.in_dim);
        debug_assert_eq!(output.len(), n * self.out_dim);
        let scale = f64::from(1u32 << bits.min(30));
        let q = |v: f64| (v * scale).round() / scale;
        let LaneScratch { xt, yt, qw, qb } = lanes;
        let qw = simd::ensure_len(qw, self.weights.len());
        for (dst, &w) in qw.iter_mut().zip(&self.weights) {
            *dst = q(w);
        }
        let qb = simd::ensure_len(qb, self.biases.len());
        for (dst, &b) in qb.iter_mut().zip(&self.biases) {
            *dst = q(b);
        }
        if isa.lanes_f64() > 1 && n >= isa.lanes_f64() {
            tile_lanes(
                self.in_dim,
                self.out_dim,
                self.activation,
                n,
                input,
                output,
                isa,
                xt,
                yt,
                qw,
                qb,
                Some(scale),
            );
            return;
        }
        for r0 in (0..n).step_by(ROW_BLOCK) {
            let r1 = (r0 + ROW_BLOCK).min(n);
            for o0 in (0..self.out_dim).step_by(COL_BLOCK) {
                let o1 = (o0 + COL_BLOCK).min(self.out_dim);
                for r in r0..r1 {
                    let input_row = &input[r * self.in_dim..(r + 1) * self.in_dim];
                    let output_row = &mut output[r * self.out_dim..(r + 1) * self.out_dim];
                    for (o, out_val) in (o0..).zip(output_row[o0..o1].iter_mut()) {
                        let row = &qw[o * self.in_dim..(o + 1) * self.in_dim];
                        let mut acc = qb[o];
                        for (w, x) in row.iter().zip(input_row) {
                            acc += w * x;
                        }
                        *out_val = q(self.activation.apply(acc));
                    }
                }
            }
        }
    }
}

/// The SIMD batched layer kernel: lanes are batch rows.
///
/// Each `ROW_BLOCK` tile of input rows is transpose-packed into `xt`
/// (feature-major, rows padded to the lane width), then every output
/// neuron is evaluated across all tile rows at once — per row the exact
/// serial reduction (`bias`, then one multiply-then-add per feature,
/// ascending). Padding lanes compute finite garbage that is never
/// unpacked. `quant_scale` applies the quantized path's output rounding;
/// its hoisted weights/biases arrive via `weights`/`biases`.
#[allow(clippy::too_many_arguments)]
fn tile_lanes(
    in_dim: usize,
    out_dim: usize,
    act: Activation,
    n: usize,
    input: &[f64],
    output: &mut [f64],
    isa: Isa,
    xt: &mut Vec<f64>,
    yt: &mut Vec<f64>,
    weights: &[f64],
    biases: &[f64],
    quant_scale: Option<f64>,
) {
    let lw = isa.lanes_f64();
    for r0 in (0..n).step_by(ROW_BLOCK) {
        let r1 = (r0 + ROW_BLOCK).min(n);
        let rows = r1 - r0;
        let rp = rows.next_multiple_of(lw);
        let xt = simd::ensure_len(xt, in_dim * rp);
        for (k, col) in xt.chunks_exact_mut(rp).enumerate() {
            for (r, c) in col[..rows].iter_mut().enumerate() {
                *c = input[(r0 + r) * in_dim + k];
            }
            for c in &mut col[rows..] {
                *c = 0.0;
            }
        }
        let yt = simd::ensure_len(yt, rp);
        for (o, (wrow, &bias)) in weights.chunks_exact(in_dim).zip(biases).enumerate() {
            simd::neuron_rows_dispatch(isa, wrow, bias, xt, rp, yt);
            match quant_scale {
                None => {
                    for (r, &acc) in yt[..rows].iter().enumerate() {
                        output[(r0 + r) * out_dim + o] = act.apply(acc);
                    }
                }
                Some(scale) => {
                    for (r, &acc) in yt[..rows].iter().enumerate() {
                        output[(r0 + r) * out_dim + o] = (act.apply(acc) * scale).round() / scale;
                    }
                }
            }
        }
    }
}

/// A dense feed-forward network (multi-layer perceptron).
///
/// Construction is seeded; two networks built with the same topology,
/// activation, and seed are identical.
///
/// # Examples
///
/// ```
/// use rumba_nn::{Activation, Mlp};
///
/// # fn main() -> Result<(), rumba_nn::NnError> {
/// let mlp = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 42)?;
/// let out = mlp.forward(&[0.1, 0.9])?;
/// assert_eq!(out.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    topology: Vec<usize>,
}

impl Mlp {
    /// Builds a network with the given layer sizes, e.g. `&[6, 8, 4, 1]` for
    /// the paper's `6->8->4->1` notation. Hidden layers use `hidden_act`;
    /// the output layer is always [`Activation::Identity`] so the network
    /// can regress outside `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTopology`] if fewer than two layer sizes are
    /// given or any size is zero.
    pub fn new(layers: &[usize], hidden_act: Activation, seed: u64) -> Result<Self> {
        if layers.len() < 2 || layers.contains(&0) {
            return Err(NnError::InvalidTopology { layers: layers.to_vec() });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut built = Vec::with_capacity(layers.len() - 1);
        for w in layers.windows(2) {
            let is_output = built.len() == layers.len() - 2;
            let act = if is_output { Activation::Identity } else { hidden_act };
            built.push(Layer::new(w[0], w[1], act, &mut rng));
        }
        Ok(Self { layers: built, topology: layers.to_vec() })
    }

    /// The layer sizes this network was constructed with.
    #[must_use]
    pub fn topology(&self) -> &[usize] {
        &self.topology
    }

    /// The paper's arrow notation for the topology, e.g. `"6->8->4->1"`.
    #[must_use]
    pub fn topology_string(&self) -> String {
        self.topology.iter().map(ToString::to_string).collect::<Vec<_>>().join("->")
    }

    /// Input width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.topology[0]
    }

    /// Output width.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        *self.topology.last().expect("topology has at least two entries")
    }

    /// The network's layers, input side first.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total number of trainable parameters (weights + biases).
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len() + l.biases.len()).sum()
    }

    /// Total multiply-accumulates per evaluation; the accelerator cycle
    /// model is built on this.
    #[must_use]
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(Layer::mac_count).sum()
    }

    /// Evaluates the network on one input row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `input` has the wrong width.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>> {
        if input.len() != self.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: input.len(),
                port: "network input",
            });
        }
        let mut cur = input.to_vec();
        for layer in &self.layers {
            let mut next = vec![0.0; layer.out_dim];
            layer.forward_into(&cur, &mut next);
            cur = next;
        }
        Ok(cur)
    }

    /// Evaluates the network on many input rows through the cache-blocked
    /// batched kernel, fanning row chunks out over the deterministic pool.
    ///
    /// `scratch` holds the reusable activation workspaces: after the first
    /// call at a given batch shape, repeated calls perform no heap
    /// allocation (on the single-thread path; the threaded path allocates
    /// one bounded workspace per chunk). Each row's result is bit-identical
    /// to [`Mlp::forward`] — at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `inputs` has the wrong
    /// width.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumba_nn::{Activation, Matrix, MatrixView, Mlp, Scratch};
    ///
    /// # fn main() -> Result<(), rumba_nn::NnError> {
    /// let mlp = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 42)?;
    /// let rows = [0.1, 0.9, 0.5, 0.5];
    /// let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    /// mlp.forward_batch(MatrixView::new(&rows, 2, 2), &mut scratch, &mut out)?;
    /// assert_eq!(out.row(0), mlp.forward(&rows[..2])?.as_slice());
    /// # Ok(())
    /// # }
    /// ```
    pub fn forward_batch(
        &self,
        inputs: MatrixView<'_>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        self.forward_batch_with(inputs, None, scratch, out)
    }

    /// Batched counterpart of [`Mlp::forward_quantized`]; bit-identical to
    /// the per-row quantized path.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `inputs` has the wrong
    /// width.
    pub fn forward_batch_quantized(
        &self,
        inputs: MatrixView<'_>,
        bits: u32,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        self.forward_batch_with(inputs, Some(bits), scratch, out)
    }

    fn forward_batch_with(
        &self,
        inputs: MatrixView<'_>,
        quant: Option<u32>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<()> {
        if inputs.cols() != self.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: inputs.cols(),
                port: "network input",
            });
        }
        let n = inputs.rows();
        let out_dim = self.output_dim();
        out.resize(n, out_dim);
        let pool = rumba_parallel::ThreadPool::new();
        if pool.threads() <= 1 {
            let Scratch { a, b, lanes, .. } = scratch;
            self.forward_rows_flat(n, inputs.as_slice(), quant, a, b, lanes, out.as_mut_slice());
        } else {
            // Rows are independent, so chunking over them is bit-exact at
            // any thread count; each chunk gets a private workspace.
            pool.par_chunks_mut(out.as_mut_slice(), out_dim, |_c, range, chunk_out| {
                let mut local = Scratch::new();
                let sub = inputs.rows_range(range.start, range.end);
                self.forward_rows_flat(
                    sub.rows(),
                    sub.as_slice(),
                    quant,
                    &mut local.a,
                    &mut local.b,
                    &mut local.lanes,
                    chunk_out,
                );
            });
        }
        Ok(())
    }

    /// Serial whole-network batched forward over a flat `n × input_dim`
    /// buffer, writing the flat `n × output_dim` result into `out`.
    /// `a`/`b` are the grow-only ping-pong activation workspaces; `lanes`
    /// is the SIMD tile workspace. The ISA is resolved once per call and
    /// recorded in telemetry; dispatch never changes the produced bits.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_rows_flat(
        &self,
        n: usize,
        input: &[f64],
        quant: Option<u32>,
        a: &mut Matrix,
        b: &mut Matrix,
        lanes: &mut LaneScratch,
        out: &mut [f64],
    ) {
        let isa = simd::active_isa();
        simd::note_dispatch(isa);
        let run = |layer: &Layer, src: &[f64], dst: &mut [f64], lanes: &mut LaneScratch| match quant
        {
            None => layer.forward_batch_into(n, src, dst, isa, lanes),
            Some(bits) => layer.forward_batch_into_quantized(n, src, dst, bits, isa, lanes),
        };
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            // Layer li reads the previous layer's workspace and writes the
            // other one (the final layer writes straight into `out`); each
            // branch borrows the two workspaces disjointly.
            if li == last {
                let src: &[f64] = if li == 0 {
                    input
                } else if li % 2 == 1 {
                    a.as_slice()
                } else {
                    b.as_slice()
                };
                run(layer, src, out, lanes);
            } else if li == 0 {
                a.resize(n, layer.out_dim());
                run(layer, input, a.as_mut_slice(), lanes);
            } else if li % 2 == 1 {
                b.resize(n, layer.out_dim());
                run(layer, a.as_slice(), b.as_mut_slice(), lanes);
            } else {
                a.resize(n, layer.out_dim());
                run(layer, b.as_slice(), a.as_mut_slice(), lanes);
            }
        }
    }

    /// Evaluates the network on a limited-precision datapath: every weight,
    /// bias, and activation is rounded to a `2^-bits` grid, modeling an
    /// analog or reduced-width accelerator implementation (St. Amant et
    /// al.'s limited-precision analog NPU is the paper's cited example).
    ///
    /// `bits = 0` collapses everything to integers; large values converge
    /// to [`Mlp::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `input` has the wrong width.
    pub fn forward_quantized(&self, input: &[f64], bits: u32) -> Result<Vec<f64>> {
        if input.len() != self.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: input.len(),
                port: "network input",
            });
        }
        let mut cur = input.to_vec();
        for layer in &self.layers {
            let mut next = vec![0.0; layer.out_dim];
            layer.forward_into_quantized(&cur, &mut next, bits);
            cur = next;
        }
        Ok(cur)
    }

    /// Evaluates the network keeping every layer's activated output; index 0
    /// is the input itself. The production trainer traces whole batches
    /// through the blocked kernel; this per-sample version remains the
    /// reference implementation the bit-exactness tests compare against.
    #[cfg(test)]
    pub(crate) fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let mut next = vec![0.0; layer.out_dim];
            layer.forward_into(acts.last().expect("nonempty"), &mut next);
            acts.push(next);
        }
        acts
    }

    pub(crate) fn apply_gradients(
        &mut self,
        grads_w: &[Vec<f64>],
        grads_b: &[Vec<f64>],
        vel_w: &mut [Vec<f64>],
        vel_b: &mut [Vec<f64>],
        lr: f64,
        momentum: f64,
    ) {
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (w, (g, v)) in
                layer.weights.iter_mut().zip(grads_w[li].iter().zip(vel_w[li].iter_mut()))
            {
                *v = momentum * *v - lr * g;
                *w += *v;
            }
            for (b, (g, v)) in
                layer.biases.iter_mut().zip(grads_b[li].iter().zip(vel_b[li].iter_mut()))
            {
                *v = momentum * *v - lr * g;
                *b += *v;
            }
        }
    }

    /// Serializes all parameters into one flat vector (layer by layer,
    /// weights then biases) — the format the accelerator's config queue and
    /// coefficient buffers consume.
    #[must_use]
    pub fn to_flat_params(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            flat.extend_from_slice(&layer.weights);
            flat.extend_from_slice(&layer.biases);
        }
        flat
    }

    /// Restores parameters from [`Mlp::to_flat_params`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `flat` has the wrong length
    /// for this topology.
    pub fn set_flat_params(&mut self, flat: &[f64]) -> Result<()> {
        if flat.len() != self.param_count() {
            return Err(NnError::DimensionMismatch {
                expected: self.param_count(),
                actual: flat.len(),
                port: "flat parameter vector",
            });
        }
        let mut off = 0;
        for layer in &mut self.layers {
            let wn = layer.weights.len();
            layer.weights.copy_from_slice(&flat[off..off + wn]);
            off += wn;
            let bn = layer.biases.len();
            layer.biases.copy_from_slice(&flat[off..off + bn]);
            off += bn;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_topologies() {
        assert!(Mlp::new(&[], Activation::Sigmoid, 0).is_err());
        assert!(Mlp::new(&[3], Activation::Sigmoid, 0).is_err());
        assert!(Mlp::new(&[3, 0, 1], Activation::Sigmoid, 0).is_err());
    }

    #[test]
    fn same_seed_same_network() {
        let a = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 9).unwrap();
        let b = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 9).unwrap();
        assert_eq!(a, b);
        let c = Mlp::new(&[2, 4, 1], Activation::Sigmoid, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn forward_checks_width() {
        let mlp = Mlp::new(&[2, 3, 1], Activation::Sigmoid, 0).unwrap();
        assert!(mlp.forward(&[1.0]).is_err());
        assert_eq!(mlp.forward(&[1.0, 2.0]).unwrap().len(), 1);
    }

    #[test]
    fn param_and_mac_counts() {
        let mlp = Mlp::new(&[3, 8, 8, 1], Activation::Sigmoid, 0).unwrap();
        // (3*8 + 8) + (8*8 + 8) + (8*1 + 1)
        assert_eq!(mlp.param_count(), 32 + 72 + 9);
        assert_eq!(mlp.mac_count(), 24 + 64 + 8);
    }

    #[test]
    fn topology_string_uses_arrow_notation() {
        let mlp = Mlp::new(&[6, 8, 4, 1], Activation::Sigmoid, 0).unwrap();
        assert_eq!(mlp.topology_string(), "6->8->4->1");
    }

    #[test]
    fn flat_params_round_trip() {
        let src = Mlp::new(&[2, 5, 2], Activation::Tanh, 3).unwrap();
        let mut dst = Mlp::new(&[2, 5, 2], Activation::Tanh, 99).unwrap();
        assert_ne!(src, dst);
        dst.set_flat_params(&src.to_flat_params()).unwrap();
        assert_eq!(src.forward(&[0.1, 0.2]).unwrap(), dst.forward(&[0.1, 0.2]).unwrap());
    }

    #[test]
    fn set_flat_params_checks_length() {
        let mut mlp = Mlp::new(&[2, 2, 1], Activation::Sigmoid, 0).unwrap();
        assert!(mlp.set_flat_params(&[0.0; 3]).is_err());
    }

    #[test]
    fn output_layer_is_identity() {
        let mlp = Mlp::new(&[1, 4, 1], Activation::Sigmoid, 1).unwrap();
        assert_eq!(mlp.layers().last().unwrap().activation(), Activation::Identity);
    }

    #[test]
    fn quantized_forward_converges_to_exact() {
        let mlp = Mlp::new(&[2, 6, 2], Activation::Sigmoid, 8).unwrap();
        let x = [0.31, -0.57];
        let exact = mlp.forward(&x).unwrap();
        let coarse = mlp.forward_quantized(&x, 3).unwrap();
        let fine = mlp.forward_quantized(&x, 24).unwrap();
        let dist = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(p, q)| (p - q).abs()).sum::<f64>();
        assert!(dist(&fine, &exact) < dist(&coarse, &exact));
        assert!(dist(&fine, &exact) < 1e-5, "24-bit grid is near-exact");
        assert!(dist(&coarse, &exact) > 0.0, "3-bit grid must actually perturb");
    }

    #[test]
    fn quantized_forward_checks_width() {
        let mlp = Mlp::new(&[2, 3, 1], Activation::Sigmoid, 0).unwrap();
        assert!(mlp.forward_quantized(&[1.0], 8).is_err());
    }

    #[test]
    fn quantized_forward_is_deterministic() {
        let mlp = Mlp::new(&[1, 4, 1], Activation::Tanh, 2).unwrap();
        assert_eq!(
            mlp.forward_quantized(&[0.4], 6).unwrap(),
            mlp.forward_quantized(&[0.4], 6).unwrap()
        );
    }

    #[test]
    fn forward_trace_layers_match_forward() {
        let mlp = Mlp::new(&[2, 3, 2], Activation::Sigmoid, 5).unwrap();
        let x = [0.3, -0.4];
        let trace = mlp.forward_trace(&x);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.last().unwrap(), &mlp.forward(&x).unwrap());
    }
}
