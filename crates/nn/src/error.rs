use std::error::Error;
use std::fmt;

/// Errors produced while building, training, or evaluating networks.
///
/// # Examples
///
/// ```
/// use rumba_nn::{Activation, Mlp, NnError};
///
/// let err = Mlp::new(&[3], Activation::Sigmoid, 0).unwrap_err();
/// assert!(matches!(err, NnError::InvalidTopology { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// The requested layer sizes cannot form a network (fewer than two
    /// layers, or a zero-width layer).
    InvalidTopology {
        /// The offending layer sizes.
        layers: Vec<usize>,
    },
    /// An input or output slice had the wrong width for this network.
    DimensionMismatch {
        /// Width the network expected.
        expected: usize,
        /// Width the caller supplied.
        actual: usize,
        /// Human-readable description of which port mismatched.
        port: &'static str,
    },
    /// A dataset with zero rows was supplied where training data is needed.
    EmptyDataset,
    /// A training hyper-parameter was outside its valid range.
    InvalidParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected, rendered as text.
        value: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidTopology { layers } => {
                write!(f, "invalid network topology {layers:?}: need at least an input and an output layer, all of nonzero width")
            }
            NnError::DimensionMismatch { expected, actual, port } => {
                write!(f, "dimension mismatch on {port}: expected {expected}, got {actual}")
            }
            NnError::EmptyDataset => write!(f, "training dataset contains no rows"),
            NnError::InvalidParam { name, value } => {
                write!(f, "invalid training parameter {name} = {value}")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            NnError::InvalidTopology { layers: vec![1] },
            NnError::DimensionMismatch { expected: 3, actual: 2, port: "input" },
            NnError::EmptyDataset,
            NnError::InvalidParam { name: "lr", value: "-1".to_owned() },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
