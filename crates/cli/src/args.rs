//! Hand-rolled argument parsing for the `rumba` driver (no external
//! dependencies; the grammar is small enough that explicitness beats a
//! parser framework).

use std::fmt;

use rumba_nn::SimdMode;

/// Which checker the `run` subcommand attaches to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckerChoice {
    /// Linear error model (§3.2.1).
    Linear,
    /// Decision tree (§3.2.2) — the paper's best performer and the default.
    #[default]
    Tree,
    /// Exponential moving average (§3.2.3).
    Ema,
    /// Errors by value prediction (rejected by §3.2, kept for comparison).
    Evp,
    /// Extension: hashed lookup table.
    Table,
    /// Extension: tree + EMA max-ensemble.
    Ensemble,
}

impl CheckerChoice {
    fn parse(text: &str) -> Result<Self, ParseError> {
        match text {
            "linear" => Ok(Self::Linear),
            "tree" => Ok(Self::Tree),
            "ema" => Ok(Self::Ema),
            "evp" => Ok(Self::Evp),
            "table" => Ok(Self::Table),
            "ensemble" => Ok(Self::Ensemble),
            other => Err(ParseError::BadValue {
                flag: "--checker",
                value: other.to_owned(),
                expected: "linear|tree|ema|evp|table|ensemble",
            }),
        }
    }
}

/// Which §3.4 tuning mode the `run` subcommand uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeChoice {
    /// Target output quality (default 0.9).
    Toq(f64),
    /// Per-window re-execution budget.
    Energy(usize),
    /// Best-effort quality bounded by CPU overlap capacity.
    Quality,
}

impl Default for ModeChoice {
    fn default() -> Self {
        ModeChoice::Toq(0.9)
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `rumba list` — print the benchmark registry.
    List,
    /// `rumba train <kernel>` — offline training summary.
    Train {
        /// Benchmark name.
        kernel: String,
        /// Master seed.
        seed: u64,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
        /// JSONL telemetry destination (`--metrics-out`); `None` leaves the
        /// `RUMBA_METRICS_OUT` environment variable in charge.
        metrics_out: Option<String>,
    },
    /// `rumba run <kernel> [flags]` — online managed execution.
    Run {
        /// Benchmark name.
        kernel: String,
        /// Master seed.
        seed: u64,
        /// Checker to deploy.
        checker: CheckerChoice,
        /// Tuning mode.
        mode: ModeChoice,
        /// Tuning-window length.
        window: usize,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
        /// JSONL telemetry destination (`--metrics-out`); `None` leaves the
        /// `RUMBA_METRICS_OUT` environment variable in charge.
        metrics_out: Option<String>,
    },
    /// `rumba faults [flags]` — fault-injection sweep: per-checker
    /// detection-coverage table plus a managed NaN-injection run.
    Faults {
        /// Benchmarks to sweep (default gaussian + fft).
        kernels: Vec<String>,
        /// Master seed (training *and* fault-plan seed).
        seed: u64,
        /// Per-element injection rate for the rate-based fault models.
        rate: f64,
        /// Tuning-window length for the managed run.
        window: usize,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
        /// JSONL telemetry destination (`--metrics-out`); `None` leaves the
        /// `RUMBA_METRICS_OUT` environment variable in charge.
        metrics_out: Option<String>,
    },
    /// `rumba compensate [flags]` — predict-and-compensate sweep: per
    /// kernel and checker, the re-execution-only fix count that meets the
    /// TOQ versus the mixed recovery (worst offenders re-executed, the
    /// mildly wrong band compensated in place), with energy per fix.
    Compensate {
        /// Benchmarks to sweep (default gaussian + fft + inversek2j).
        kernels: Vec<String>,
        /// Master seed.
        seed: u64,
        /// Target output quality the sweep holds both recovery mixes to.
        toq: f64,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
        /// JSONL telemetry destination (`--metrics-out`); `None` leaves the
        /// `RUMBA_METRICS_OUT` environment variable in charge.
        metrics_out: Option<String>,
    },
    /// `rumba zoo [flags]` — invocation-driven model-zoo sweep: per
    /// kernel, train a quality/energy ladder of approximators, route each
    /// invocation to the cheapest tier predicted to meet the TOQ (exact
    /// CPU as the last resort), and report the modeled energy saved at
    /// equal quality versus the single-model baseline.
    Zoo {
        /// Benchmarks to sweep (default gaussian + fft + inversek2j).
        kernels: Vec<String>,
        /// Master seed.
        seed: u64,
        /// Target output quality both the baseline and the zoo hold.
        toq: f64,
        /// Ladder size (model tiers per kernel, exact CPU not counted).
        tiers: usize,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
        /// JSONL telemetry destination (`--metrics-out`); `None` leaves the
        /// `RUMBA_METRICS_OUT` environment variable in charge.
        metrics_out: Option<String>,
    },
    /// `rumba drift [flags]` — open-world drift sweep: per kernel ×
    /// generative scenario (steady, drifting inputs, diurnal load,
    /// correlated bursts), compare the detection coverage of the
    /// clean-stream baseline, the reset-only watchdog (refit off), and
    /// the online checker re-fit (refit on) under a ramped `InputDrift`
    /// plan.
    Drift {
        /// Benchmarks to sweep (default gaussian + fft).
        kernels: Vec<String>,
        /// Master seed (training, scenario and fault-plan seed).
        seed: u64,
        /// Tuning-window length (the refit commit boundary).
        window: usize,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
        /// JSONL telemetry destination (`--metrics-out`); `None` leaves the
        /// `RUMBA_METRICS_OUT` environment variable in charge.
        metrics_out: Option<String>,
    },
    /// `rumba report <path.jsonl>` — summarize a telemetry stream.
    Report {
        /// Path to a JSONL file written via `--metrics-out`.
        path: String,
    },
    /// `rumba purity <kernel>` — §2.2 re-execution safety check.
    Purity {
        /// Benchmark name.
        kernel: String,
    },
    /// `rumba serve` — multi-tenant NDJSON serving loop over
    /// stdin/stdout, a Unix socket, or a sharded TCP listener.
    Serve {
        /// Unix socket path (`None` and no `--tcp` serves stdin/stdout).
        socket: Option<String>,
        /// TCP listen address (`host:port`); sharded multi-client serving.
        tcp: Option<String>,
        /// Shard-thread count for the socket/TCP transports. Session
        /// placement is a pure hash of the session name, so responses are
        /// bit-identical at any shard count.
        shards: usize,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). Results are identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). Results are
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
    },
    /// `rumba bench-serve` — replay the seeded multi-tenant workload
    /// trace (the serving conformance artifact).
    BenchServe {
        /// Workload seed.
        seed: u64,
        /// Tenant count.
        tenants: usize,
        /// Requests per tenant.
        requests: usize,
        /// Where to write the tenant-sweep throughput report
        /// (`BENCH_serve.json`); `None` skips the sweep.
        json_out: Option<String>,
        /// When set, replay the workload over real TCP through this many
        /// shards (one lockstep connection per tenant) and print the
        /// multi-client trace instead of the in-process one.
        shards: Option<usize>,
        /// Worker-thread override (`None` leaves `RUMBA_THREADS`/auto in
        /// charge). The trace is identical at any setting.
        threads: Option<usize>,
        /// SIMD dispatch override (`--simd 0|1|auto`; `None` leaves the
        /// `RUMBA_SIMD` environment variable in charge). The trace is
        /// bit-identical at any setting.
        simd: Option<SimdMode>,
    },
    /// `rumba help` or no arguments.
    Help,
}

/// Why a command line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The first word was not a known subcommand.
    UnknownCommand(String),
    /// A flag that needs a value reached the end of the arguments.
    MissingValue(&'static str),
    /// A flag value failed validation.
    BadValue {
        /// The flag.
        flag: &'static str,
        /// The offending text.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// A positional argument (the kernel name) is missing.
    MissingKernel,
    /// An argument was not recognized in this position.
    UnknownFlag(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownCommand(c) => write!(f, "unknown command '{c}' (try 'rumba help')"),
            ParseError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ParseError::BadValue { flag, value, expected } => {
                write!(f, "{flag} got '{value}', expected {expected}")
            }
            ParseError::MissingKernel => write!(f, "missing benchmark name (try 'rumba list')"),
            ParseError::UnknownFlag(a) => write!(f, "unrecognized argument '{a}'"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the arguments after the program name.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found.
///
/// # Examples
///
/// ```
/// use rumba_cli::args::{parse, Command};
///
/// let cmd = parse(&["list".to_owned()]).unwrap();
/// assert_eq!(cmd, Command::List);
/// ```
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("purity") => {
            let kernel = it.next().ok_or(ParseError::MissingKernel)?.to_owned();
            Ok(Command::Purity { kernel })
        }
        Some("report") => {
            let path = it.next().ok_or(ParseError::MissingValue("report <path.jsonl>"))?.to_owned();
            if let Some(extra) = it.next() {
                return Err(ParseError::UnknownFlag(extra.to_owned()));
            }
            Ok(Command::Report { path })
        }
        Some("train") => {
            let kernel = it.next().ok_or(ParseError::MissingKernel)?.to_owned();
            let mut seed = 42u64;
            let mut threads = None;
            let mut simd = None;
            let mut metrics_out = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(parse_path(rest.get(k + 1).copied(), "--metrics-out")?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Train { kernel, seed, threads, simd, metrics_out })
        }
        Some("faults") => {
            let mut kernels = Vec::new();
            let mut seed = 42u64;
            let mut rate = 1e-3;
            let mut window = 128usize;
            let mut threads = None;
            let mut simd = None;
            let mut metrics_out = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--kernels" => {
                        let v = rest.get(k + 1).ok_or(ParseError::MissingValue("--kernels"))?;
                        kernels =
                            v.split(',').filter(|s| !s.is_empty()).map(str::to_owned).collect();
                        if kernels.is_empty() {
                            return Err(ParseError::BadValue {
                                flag: "--kernels",
                                value: (*v).to_owned(),
                                expected: "a comma-separated benchmark list",
                            });
                        }
                        k += 2;
                    }
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--rate" => {
                        let v = parse_f64(rest.get(k + 1).copied(), "--rate")?;
                        if !(v > 0.0 && v <= 1.0) {
                            return Err(ParseError::BadValue {
                                flag: "--rate",
                                value: v.to_string(),
                                expected: "an injection rate in (0, 1]",
                            });
                        }
                        rate = v;
                        k += 2;
                    }
                    "--window" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--window")?;
                        if v == 0 {
                            return Err(ParseError::BadValue {
                                flag: "--window",
                                value: "0".into(),
                                expected: "a positive window length",
                            });
                        }
                        window = v as usize;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(parse_path(rest.get(k + 1).copied(), "--metrics-out")?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Faults { kernels, seed, rate, window, threads, simd, metrics_out })
        }
        Some("compensate") => {
            let mut kernels = Vec::new();
            let mut seed = 42u64;
            let mut toq = 0.9f64;
            let mut threads = None;
            let mut simd = None;
            let mut metrics_out = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--kernels" => {
                        let v = rest.get(k + 1).ok_or(ParseError::MissingValue("--kernels"))?;
                        kernels =
                            v.split(',').filter(|s| !s.is_empty()).map(str::to_owned).collect();
                        if kernels.is_empty() {
                            return Err(ParseError::BadValue {
                                flag: "--kernels",
                                value: (*v).to_owned(),
                                expected: "a comma-separated benchmark list",
                            });
                        }
                        k += 2;
                    }
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--toq" => {
                        let v = parse_f64(rest.get(k + 1).copied(), "--toq")?;
                        if !(0.0 < v && v <= 1.0) {
                            return Err(ParseError::BadValue {
                                flag: "--toq",
                                value: v.to_string(),
                                expected: "a quality in (0, 1]",
                            });
                        }
                        toq = v;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(parse_path(rest.get(k + 1).copied(), "--metrics-out")?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Compensate { kernels, seed, toq, threads, simd, metrics_out })
        }
        Some("zoo") => {
            let mut kernels = Vec::new();
            let mut seed = 42u64;
            let mut toq = 0.95f64;
            let mut tiers = 3usize;
            let mut threads = None;
            let mut simd = None;
            let mut metrics_out = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--kernels" => {
                        let v = rest.get(k + 1).ok_or(ParseError::MissingValue("--kernels"))?;
                        kernels =
                            v.split(',').filter(|s| !s.is_empty()).map(str::to_owned).collect();
                        if kernels.is_empty() {
                            return Err(ParseError::BadValue {
                                flag: "--kernels",
                                value: (*v).to_owned(),
                                expected: "a comma-separated benchmark list",
                            });
                        }
                        k += 2;
                    }
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--toq" => {
                        let v = parse_f64(rest.get(k + 1).copied(), "--toq")?;
                        if !(0.0 < v && v <= 1.0) {
                            return Err(ParseError::BadValue {
                                flag: "--toq",
                                value: v.to_string(),
                                expected: "a quality in (0, 1]",
                            });
                        }
                        toq = v;
                        k += 2;
                    }
                    "--tiers" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--tiers")?;
                        if !(1..=8).contains(&v) {
                            return Err(ParseError::BadValue {
                                flag: "--tiers",
                                value: v.to_string(),
                                expected: "a ladder size in 1..=8",
                            });
                        }
                        tiers = v as usize;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(parse_path(rest.get(k + 1).copied(), "--metrics-out")?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Zoo { kernels, seed, toq, tiers, threads, simd, metrics_out })
        }
        Some("drift") => {
            let mut kernels = Vec::new();
            let mut seed = 42u64;
            let mut window = 128usize;
            let mut threads = None;
            let mut simd = None;
            let mut metrics_out = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--kernels" => {
                        let v = rest.get(k + 1).ok_or(ParseError::MissingValue("--kernels"))?;
                        kernels =
                            v.split(',').filter(|s| !s.is_empty()).map(str::to_owned).collect();
                        if kernels.is_empty() {
                            return Err(ParseError::BadValue {
                                flag: "--kernels",
                                value: (*v).to_owned(),
                                expected: "a comma-separated benchmark list",
                            });
                        }
                        k += 2;
                    }
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--window" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--window")?;
                        if v == 0 {
                            return Err(ParseError::BadValue {
                                flag: "--window",
                                value: "0".into(),
                                expected: "a positive window length",
                            });
                        }
                        window = v as usize;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(parse_path(rest.get(k + 1).copied(), "--metrics-out")?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Drift { kernels, seed, window, threads, simd, metrics_out })
        }
        Some("serve") => {
            let mut socket = None;
            let mut tcp = None;
            let mut shards = 1usize;
            let mut threads = None;
            let mut simd = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--socket" => {
                        socket = Some(parse_path(rest.get(k + 1).copied(), "--socket")?);
                        k += 2;
                    }
                    "--tcp" => {
                        tcp = Some(parse_path(rest.get(k + 1).copied(), "--tcp")?);
                        k += 2;
                    }
                    "--shards" => {
                        shards = parse_shards(rest.get(k + 1).copied())?;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Serve { socket, tcp, shards, threads, simd })
        }
        Some("bench-serve") => {
            let mut seed = 7u64;
            let mut tenants = 3usize;
            let mut requests = 40usize;
            let mut json_out = None;
            let mut shards = None;
            let mut threads = None;
            let mut simd = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--shards" => {
                        shards = Some(parse_shards(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--tenants" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--tenants")?;
                        if v == 0 {
                            return Err(ParseError::BadValue {
                                flag: "--tenants",
                                value: "0".into(),
                                expected: "a positive tenant count",
                            });
                        }
                        tenants = v as usize;
                        k += 2;
                    }
                    "--requests" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--requests")?;
                        if v == 0 {
                            return Err(ParseError::BadValue {
                                flag: "--requests",
                                value: "0".into(),
                                expected: "a positive request count",
                            });
                        }
                        requests = v as usize;
                        k += 2;
                    }
                    "--json-out" => {
                        json_out = Some(parse_path(rest.get(k + 1).copied(), "--json-out")?);
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::BenchServe { seed, tenants, requests, json_out, shards, threads, simd })
        }
        Some("run") => {
            let kernel = it.next().ok_or(ParseError::MissingKernel)?.to_owned();
            let mut seed = 42u64;
            let mut checker = CheckerChoice::default();
            let mut mode = ModeChoice::default();
            let mut window = 256usize;
            let mut threads = None;
            let mut simd = None;
            let mut metrics_out = None;
            let rest: Vec<&str> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                match rest[k] {
                    "--seed" => {
                        seed = parse_u64(rest.get(k + 1).copied(), "--seed")?;
                        k += 2;
                    }
                    "--checker" => {
                        let v = rest.get(k + 1).ok_or(ParseError::MissingValue("--checker"))?;
                        checker = CheckerChoice::parse(v)?;
                        k += 2;
                    }
                    "--toq" => {
                        let v = parse_f64(rest.get(k + 1).copied(), "--toq")?;
                        if !(0.0 < v && v <= 1.0) {
                            return Err(ParseError::BadValue {
                                flag: "--toq",
                                value: v.to_string(),
                                expected: "a quality in (0, 1]",
                            });
                        }
                        mode = ModeChoice::Toq(v);
                        k += 2;
                    }
                    "--budget" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--budget")?;
                        mode = ModeChoice::Energy(v as usize);
                        k += 2;
                    }
                    "--quality-mode" => {
                        mode = ModeChoice::Quality;
                        k += 1;
                    }
                    "--window" => {
                        let v = parse_u64(rest.get(k + 1).copied(), "--window")?;
                        if v == 0 {
                            return Err(ParseError::BadValue {
                                flag: "--window",
                                value: "0".into(),
                                expected: "a positive window length",
                            });
                        }
                        window = v as usize;
                        k += 2;
                    }
                    "--threads" => {
                        threads = Some(parse_threads(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--simd" => {
                        simd = Some(parse_simd(rest.get(k + 1).copied())?);
                        k += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(parse_path(rest.get(k + 1).copied(), "--metrics-out")?);
                        k += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_owned())),
                }
            }
            Ok(Command::Run { kernel, seed, checker, mode, window, threads, simd, metrics_out })
        }
        Some(other) => Err(ParseError::UnknownCommand(other.to_owned())),
    }
}

fn parse_u64(value: Option<&str>, flag: &'static str) -> Result<u64, ParseError> {
    let text = value.ok_or(ParseError::MissingValue(flag))?;
    text.parse().map_err(|_| ParseError::BadValue {
        flag,
        value: text.to_owned(),
        expected: "an unsigned integer",
    })
}

fn parse_shards(value: Option<&str>) -> Result<usize, ParseError> {
    let v = parse_u64(value, "--shards")?;
    if v == 0 {
        return Err(ParseError::BadValue {
            flag: "--shards",
            value: "0".into(),
            expected: "a positive shard count",
        });
    }
    Ok(v as usize)
}

fn parse_threads(value: Option<&str>) -> Result<usize, ParseError> {
    let v = parse_u64(value, "--threads")?;
    if v == 0 {
        return Err(ParseError::BadValue {
            flag: "--threads",
            value: "0".into(),
            expected: "a positive worker-thread count",
        });
    }
    Ok(v as usize)
}

fn parse_simd(value: Option<&str>) -> Result<SimdMode, ParseError> {
    let text = value.ok_or(ParseError::MissingValue("--simd"))?;
    SimdMode::parse(text).ok_or_else(|| ParseError::BadValue {
        flag: "--simd",
        value: text.to_owned(),
        expected: "0|1|auto",
    })
}

fn parse_path(value: Option<&str>, flag: &'static str) -> Result<String, ParseError> {
    let text = value.ok_or(ParseError::MissingValue(flag))?;
    if text.trim().is_empty() {
        return Err(ParseError::BadValue { flag, value: text.to_owned(), expected: "a file path" });
    }
    Ok(text.to_owned())
}

fn parse_f64(value: Option<&str>, flag: &'static str) -> Result<f64, ParseError> {
    let text = value.ok_or(ParseError::MissingValue(flag))?;
    text.parse().map_err(|_| ParseError::BadValue {
        flag,
        value: text.to_owned(),
        expected: "a number",
    })
}

/// The help text `rumba help` prints.
pub const HELP: &str = "\
rumba — online quality management for approximate accelerators

USAGE:
    rumba list
    rumba train <kernel> [--seed N] [--threads N] [--simd M]
                         [--metrics-out PATH]
    rumba run <kernel> [--checker linear|tree|ema|evp|table|ensemble]
                       [--toq Q | --budget N | --quality-mode]
                       [--window N] [--seed N] [--threads N] [--simd M]
                       [--metrics-out PATH]
    rumba faults [--kernels a,b,...] [--seed N] [--rate R] [--window N]
                 [--threads N] [--simd M] [--metrics-out PATH]
    rumba compensate [--kernels a,b,...] [--seed N] [--toq Q]
                     [--threads N] [--simd M] [--metrics-out PATH]
    rumba zoo [--kernels a,b,...] [--seed N] [--toq Q] [--tiers N]
              [--threads N] [--simd M] [--metrics-out PATH]
    rumba drift [--kernels a,b,...] [--seed N] [--window N]
                [--threads N] [--simd M] [--metrics-out PATH]
    rumba report <path.jsonl>
    rumba purity <kernel>
    rumba serve [--socket PATH | --tcp HOST:PORT] [--shards N]
                [--threads N] [--simd M]
    rumba bench-serve [--seed N] [--tenants N] [--requests N]
                      [--shards N] [--json-out PATH] [--threads N]
                      [--simd M]
    rumba help

THREADS:
    --threads N sets the worker-thread count for training and batch
    evaluation, overriding the RUMBA_THREADS environment variable (the
    default is the machine's available parallelism). Output is
    bit-identical at every thread count; --threads 1 runs fully serial.

SIMD:
    --simd 0|1|auto selects the neural-network batch kernels, overriding
    the RUMBA_SIMD environment variable: 0 forces the scalar path, 1
    requests the vector path (AVX2 on x86_64, NEON on aarch64), auto (the
    default) picks the best ISA the CPU supports. The vector kernels keep
    the scalar reduction order exactly, so output is bit-identical at
    every setting; on hardware without AVX2/NEON, --simd 1 silently falls
    back to scalar. The dispatched ISA is recorded in the 'pool'
    telemetry event ('rumba report' prints it).

TELEMETRY:
    --metrics-out PATH streams control-loop telemetry (per-window
    threshold/quality/fire-rate events, cache probes, pool usage) to PATH
    as JSON lines, overriding the RUMBA_METRICS_OUT environment variable.
    Telemetry is purely observational: command output is byte-identical
    with it on or off. 'rumba report <path.jsonl>' summarizes a stream.

FAULTS:
    rumba faults injects seed-deterministic transient faults (datapath
    bit-flips, NaN/Inf corruption, stuck-at outputs, input drift) into the
    accelerator and reports a detection-coverage table per checker, then
    runs the managed loop under NaN injection at --rate (default 1e-3) to
    demonstrate quarantine + watchdog degradation: merged outputs must
    stay finite or the command fails. --kernels defaults to gaussian,fft.

COMPENSATION:
    rumba compensate analyses the predict-and-compensate recovery mix:
    checkers emit signed error estimates, so flagged invocations whose
    predicted error is small can be repaired in place (approx minus
    predicted error) instead of re-executed on the CPU. Per kernel and
    checker the sweep reports how many CPU re-executions the
    re-execution-only policy needs to meet --toq (default 0.9), the
    mixed policy's split (worst offenders re-executed, the mildly wrong
    band compensated), the residual error of both at equal quality, and
    the energy per repaired invocation. Online, the same mechanism is
    the Compensate fix scheme: 'rumba serve' sessions opt in with
    fix=compensate plus a band, and the tuner co-adapts the band with
    the firing threshold.

MODEL ZOO:
    rumba zoo trains, per kernel, a ladder of --tiers approximators at
    distinct quality/energy points (smaller hidden layers, fewer
    fixed-point fraction bits) on top of the full Rumba accelerator, plus
    a cheap per-tier linear router that predicts each tier's invocation
    error from the input features. Online, every invocation is routed to
    the cheapest tier predicted to meet --toq (default 0.95), with exact
    CPU execution as the last resort; the checker/recovery loop still
    guards every model-tier invocation, so the TOQ holds. The sweep
    reports the modeled energy of the routed zoo against the single-model
    baseline at equal quality, plus the tier mix. 'rumba serve' sessions
    opt in with zoo=N; under queue pressure a serving session degrades to
    cheaper tiers before shedding requests. Trained ladders persist in
    the model cache, so figure binaries reload instead of retraining.

DRIFT:
    rumba drift streams seeded open-world workloads at each kernel —
    steady replay, drifting input distributions, a diurnal load curve,
    correlated multi-tenant bursts — every sample a pure hash of (seed,
    scenario, invocation), so the sweep is bit-identical at any thread
    count, SIMD path or shard layout. The drift scenario additionally
    ramps an input_drift fault plan inside the accelerator: the checker
    sees pristine inputs, so a checker fit offline goes blind. Per kernel
    x scenario the sweep reports the detection coverage (share of
    truly-bad invocations the checker fires on) of the clean-stream
    baseline, of the reset-only watchdog (refit off), and of the online
    checker re-fit (refit on), which audits every Nth invocation against
    the exact kernel, accumulates (input, exact, approx) rows in a
    bounded deterministic reservoir, and re-fits + re-calibrates the
    checker at the Recalibrated rung of the watchdog ladder, committing
    the swap serially at a --window boundary. 'rumba serve' sessions opt
    in with refit=true; the reservoir and refit epoch travel in session
    snapshots, so mid-refit migration is bit-for-bit.

SERVING:
    rumba serve runs a long-lived multi-tenant serving loop: clients open
    named sessions (each with its own kernel, checker, tuning mode, fault
    plan and quality state), submit requests, and drain results over a
    newline-delimited JSON protocol on stdin/stdout, --socket PATH (a
    Unix domain socket) or --tcp HOST:PORT. The socket and TCP transports
    accept many concurrent connections and fan them into --shards N shard
    threads (default 1); each shard owns the sessions that hash to it, so
    placement is reproducible and responses are bit-identical at any
    shard count. The snapshot op serializes a session's live state as one
    plain-text line; restore rebuilds it bit-for-bit (under any name, so
    sessions migrate between shards and survive crashes). shutdown drains
    every shard, removes the socket file and flushes telemetry before the
    ack. Per-session bounded queues apply shed (503-style rejection) or
    block admission when full. One tenant's faults never move another
    tenant's threshold. rumba bench-serve replays a seeded interleaved
    workload and prints the canonical response trace; the trace is
    byte-identical at every thread count (ci/serve_trace.golden gates
    this). With --shards N the same workload runs over real TCP, one
    lockstep connection per tenant (ci/serve_net.golden gates this at
    shards 1 and 2). --json-out additionally sweeps the tenant count and
    the shard x client grid and writes a throughput/queue-depth report.

EXAMPLES:
    rumba run inversek2j --checker tree --toq 0.9
    rumba compensate --kernels gaussian,fft --toq 0.9
    rumba zoo --kernels gaussian,inversek2j --tiers 3 --toq 0.95
    rumba drift --kernels gaussian --seed 7
    rumba run blackscholes --budget 16 --window 256
    rumba run fft --checker ensemble --quality-mode
    rumba train kmeans --threads 4
    rumba run gaussian --toq 0.95 --metrics-out run.jsonl
    rumba report run.jsonl
";

#[cfg(test)]
mod tests {
    use super::*;

    fn p(line: &str) -> Result<Command, ParseError> {
        let args: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        parse(&args)
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(p("list").unwrap(), Command::List);
        assert_eq!(p("help").unwrap(), Command::Help);
        assert_eq!(p("").unwrap(), Command::Help);
        assert_eq!(p("purity sobel").unwrap(), Command::Purity { kernel: "sobel".into() });
    }

    #[test]
    fn parses_run_with_defaults() {
        let cmd = p("run fft").unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                kernel: "fft".into(),
                seed: 42,
                checker: CheckerChoice::Tree,
                mode: ModeChoice::Toq(0.9),
                window: 256,
                threads: None,
                simd: None,
                metrics_out: None,
            }
        );
    }

    #[test]
    fn parses_run_with_all_flags() {
        let cmd = p("run jmeint --checker ema --toq 0.95 --window 128 --seed 7 --threads 4 --simd 1 --metrics-out m.jsonl")
            .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                kernel: "jmeint".into(),
                seed: 7,
                checker: CheckerChoice::Ema,
                mode: ModeChoice::Toq(0.95),
                window: 128,
                threads: Some(4),
                simd: Some(SimdMode::On),
                metrics_out: Some("m.jsonl".into()),
            }
        );
    }

    #[test]
    fn parses_threads_on_train_and_rejects_zero() {
        assert_eq!(
            p("train kmeans --threads 8").unwrap(),
            Command::Train {
                kernel: "kmeans".into(),
                seed: 42,
                threads: Some(8),
                simd: None,
                metrics_out: None
            }
        );
        assert_eq!(
            p("train kmeans").unwrap(),
            Command::Train {
                kernel: "kmeans".into(),
                seed: 42,
                threads: None,
                simd: None,
                metrics_out: None
            }
        );
        assert!(matches!(p("run fft --threads 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("train fft --threads"), Err(ParseError::MissingValue("--threads"))));
        assert!(matches!(p("run fft --threads two"), Err(ParseError::BadValue { .. })));
    }

    #[test]
    fn help_documents_threads_flag() {
        assert!(HELP.contains("--threads N"));
        assert!(HELP.contains("RUMBA_THREADS"));
    }

    #[test]
    fn parses_simd_spellings_and_rejects_garbage() {
        assert!(matches!(
            p("run fft --simd 0").unwrap(),
            Command::Run { simd: Some(SimdMode::Off), .. }
        ));
        assert!(matches!(
            p("run fft --simd on").unwrap(),
            Command::Run { simd: Some(SimdMode::On), .. }
        ));
        assert!(matches!(
            p("train fft --simd auto").unwrap(),
            Command::Train { simd: Some(SimdMode::Auto), .. }
        ));
        assert!(matches!(
            p("serve --simd scalar").unwrap(),
            Command::Serve { simd: Some(SimdMode::Off), .. }
        ));
        assert!(matches!(p("run fft --simd"), Err(ParseError::MissingValue("--simd"))));
        assert!(matches!(p("run fft --simd avx512"), Err(ParseError::BadValue { .. })));
    }

    #[test]
    fn help_documents_simd_flag() {
        assert!(HELP.contains("--simd 0|1|auto"));
        assert!(HELP.contains("RUMBA_SIMD"));
        assert!(HELP.contains("AVX2"));
        assert!(HELP.contains("NEON"));
    }

    #[test]
    fn parses_report_and_metrics_out() {
        assert_eq!(p("report m.jsonl").unwrap(), Command::Report { path: "m.jsonl".into() });
        assert!(matches!(p("report"), Err(ParseError::MissingValue(_))));
        assert!(matches!(p("report a.jsonl extra"), Err(ParseError::UnknownFlag(_))));
        assert!(matches!(
            p("train fft --metrics-out out.jsonl").unwrap(),
            Command::Train { metrics_out: Some(_), .. }
        ));
        assert!(matches!(
            p("run fft --metrics-out"),
            Err(ParseError::MissingValue("--metrics-out"))
        ));
    }

    #[test]
    fn help_documents_telemetry() {
        assert!(HELP.contains("--metrics-out"));
        assert!(HELP.contains("RUMBA_METRICS_OUT"));
        assert!(HELP.contains("rumba report"));
    }

    #[test]
    fn budget_and_quality_modes() {
        assert!(matches!(
            p("run fft --budget 16").unwrap(),
            Command::Run { mode: ModeChoice::Energy(16), .. }
        ));
        assert!(matches!(
            p("run fft --quality-mode").unwrap(),
            Command::Run { mode: ModeChoice::Quality, .. }
        ));
    }

    #[test]
    fn parses_faults_with_defaults_and_flags() {
        assert_eq!(
            p("faults").unwrap(),
            Command::Faults {
                kernels: vec![],
                seed: 42,
                rate: 1e-3,
                window: 128,
                threads: None,
                simd: None,
                metrics_out: None,
            }
        );
        assert_eq!(
            p("faults --kernels gaussian,fft --seed 7 --rate 0.01 --window 64 --threads 2 --simd 0 --metrics-out f.jsonl")
                .unwrap(),
            Command::Faults {
                kernels: vec!["gaussian".into(), "fft".into()],
                seed: 7,
                rate: 0.01,
                window: 64,
                threads: Some(2),
                simd: Some(SimdMode::Off),
                metrics_out: Some("f.jsonl".into()),
            }
        );
        assert!(matches!(p("faults --rate 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("faults --rate 1.5"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("faults --kernels"), Err(ParseError::MissingValue("--kernels"))));
        assert!(matches!(p("faults --kernels ,"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("faults --wat"), Err(ParseError::UnknownFlag(_))));
    }

    #[test]
    fn parses_compensate_with_defaults_and_flags() {
        assert_eq!(
            p("compensate").unwrap(),
            Command::Compensate {
                kernels: vec![],
                seed: 42,
                toq: 0.9,
                threads: None,
                simd: None,
                metrics_out: None,
            }
        );
        assert_eq!(
            p("compensate --kernels gaussian,fft --seed 9 --toq 0.95 --threads 2 --simd 1 --metrics-out c.jsonl")
                .unwrap(),
            Command::Compensate {
                kernels: vec!["gaussian".into(), "fft".into()],
                seed: 9,
                toq: 0.95,
                threads: Some(2),
                simd: Some(SimdMode::On),
                metrics_out: Some("c.jsonl".into()),
            }
        );
        assert!(matches!(p("compensate --toq 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("compensate --toq 1.5"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("compensate --kernels ,"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("compensate --wat"), Err(ParseError::UnknownFlag(_))));
    }

    #[test]
    fn help_documents_compensation() {
        assert!(HELP.contains("rumba compensate"));
        assert!(HELP.contains("signed error estimates"));
        assert!(HELP.contains("fix=compensate"));
    }

    #[test]
    fn parses_zoo_with_defaults_and_flags() {
        assert_eq!(
            p("zoo").unwrap(),
            Command::Zoo {
                kernels: vec![],
                seed: 42,
                toq: 0.95,
                tiers: 3,
                threads: None,
                simd: None,
                metrics_out: None,
            }
        );
        assert_eq!(
            p("zoo --kernels gaussian,fft --seed 9 --toq 0.9 --tiers 4 --threads 2 --simd 1 --metrics-out z.jsonl")
                .unwrap(),
            Command::Zoo {
                kernels: vec!["gaussian".into(), "fft".into()],
                seed: 9,
                toq: 0.9,
                tiers: 4,
                threads: Some(2),
                simd: Some(SimdMode::On),
                metrics_out: Some("z.jsonl".into()),
            }
        );
        assert!(matches!(p("zoo --toq 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("zoo --tiers 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("zoo --tiers 9"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("zoo --wat"), Err(ParseError::UnknownFlag(_))));
    }

    #[test]
    fn parses_drift_with_defaults_and_flags() {
        assert_eq!(
            p("drift").unwrap(),
            Command::Drift {
                kernels: vec![],
                seed: 42,
                window: 128,
                threads: None,
                simd: None,
                metrics_out: None,
            }
        );
        assert_eq!(
            p("drift --kernels gaussian --seed 7 --window 64 --threads 4 --simd 0 --metrics-out d.jsonl")
                .unwrap(),
            Command::Drift {
                kernels: vec!["gaussian".into()],
                seed: 7,
                window: 64,
                threads: Some(4),
                simd: Some(SimdMode::Off),
                metrics_out: Some("d.jsonl".into()),
            }
        );
        assert!(matches!(p("drift --window 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("drift --kernels"), Err(ParseError::MissingValue("--kernels"))));
        assert!(matches!(p("drift --wat"), Err(ParseError::UnknownFlag(_))));
    }

    #[test]
    fn help_documents_drift() {
        assert!(HELP.contains("rumba drift"));
        assert!(HELP.contains("detection coverage"));
        assert!(HELP.contains("refit=true"));
        assert!(HELP.contains("Recalibrated rung"));
    }

    #[test]
    fn help_documents_the_model_zoo() {
        assert!(HELP.contains("rumba zoo"));
        assert!(HELP.contains("--tiers"));
        assert!(HELP.contains("zoo=N"));
        assert!(HELP.contains("cheaper tiers before shedding"));
    }

    #[test]
    fn help_documents_faults() {
        assert!(HELP.contains("rumba faults"));
        assert!(HELP.contains("--rate"));
        assert!(HELP.contains("detection-coverage"));
    }

    #[test]
    fn parses_serve_and_bench_serve() {
        assert_eq!(
            p("serve").unwrap(),
            Command::Serve { socket: None, tcp: None, shards: 1, threads: None, simd: None }
        );
        assert_eq!(
            p("serve --socket /tmp/rumba.sock --threads 2 --simd auto").unwrap(),
            Command::Serve {
                socket: Some("/tmp/rumba.sock".into()),
                tcp: None,
                shards: 1,
                threads: Some(2),
                simd: Some(SimdMode::Auto),
            }
        );
        assert_eq!(
            p("serve --tcp 127.0.0.1:7077 --shards 4").unwrap(),
            Command::Serve {
                socket: None,
                tcp: Some("127.0.0.1:7077".into()),
                shards: 4,
                threads: None,
                simd: None,
            }
        );
        assert_eq!(
            p("bench-serve").unwrap(),
            Command::BenchServe {
                seed: 7,
                tenants: 3,
                requests: 40,
                json_out: None,
                shards: None,
                threads: None,
                simd: None,
            }
        );
        assert_eq!(
            p("bench-serve --seed 9 --tenants 2 --requests 12 --shards 2 --json-out b.json --threads 4 --simd 1")
                .unwrap(),
            Command::BenchServe {
                seed: 9,
                tenants: 2,
                requests: 12,
                json_out: Some("b.json".into()),
                shards: Some(2),
                threads: Some(4),
                simd: Some(SimdMode::On),
            }
        );
        assert!(matches!(p("serve --socket"), Err(ParseError::MissingValue("--socket"))));
        assert!(matches!(p("serve --shards 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("bench-serve --shards 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("bench-serve --tenants 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("bench-serve --requests 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("serve --wat"), Err(ParseError::UnknownFlag(_))));
    }

    #[test]
    fn help_documents_serving() {
        assert!(HELP.contains("rumba serve"));
        assert!(HELP.contains("rumba bench-serve"));
        assert!(HELP.contains("serve_trace.golden"));
        assert!(HELP.contains("serve_net.golden"));
        assert!(HELP.contains("--shards"));
        assert!(HELP.contains("snapshot"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(p("frobnicate"), Err(ParseError::UnknownCommand(_))));
        assert!(matches!(p("run"), Err(ParseError::MissingKernel)));
        assert!(matches!(p("run fft --seed"), Err(ParseError::MissingValue("--seed"))));
        assert!(matches!(p("run fft --toq 1.5"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("run fft --toq abc"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("run fft --window 0"), Err(ParseError::BadValue { .. })));
        assert!(matches!(p("run fft --wat"), Err(ParseError::UnknownFlag(_))));
        assert!(matches!(p("run fft --checker magic"), Err(ParseError::BadValue { .. })));
    }

    #[test]
    fn errors_display_helpfully() {
        let e = p("run fft --checker magic").unwrap_err();
        assert!(e.to_string().contains("--checker"));
        assert!(e.to_string().contains("magic"));
    }
}
