//! The `rumba` command-line driver. See `rumba help`.

use std::process::ExitCode;

use rumba_cli::args::{parse, Command, HELP};
use rumba_cli::commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command {
        Command::Help => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Command::List => {
            print!("{}", commands::list());
            return ExitCode::SUCCESS;
        }
        Command::Train { kernel, seed, threads } => {
            rumba_parallel::set_thread_override(threads);
            commands::train(&kernel, seed)
        }
        Command::Run { kernel, seed, checker, mode, window, threads } => {
            rumba_parallel::set_thread_override(threads);
            commands::run(&kernel, seed, checker, mode, window)
        }
        Command::Purity { kernel } => commands::purity(&kernel),
    };

    match result {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
