//! The `rumba` command-line driver. See `rumba help`.

use std::process::ExitCode;

use rumba_cli::args::{parse, Command, HELP};
use rumba_cli::commands;

/// Points the global telemetry sink at `path`, failing the command early
/// when the file cannot be created.
fn install_metrics_sink(path: &str) -> Result<(), ExitCode> {
    match rumba_obs::JsonlSink::create(path) {
        Ok(sink) => {
            rumba_obs::set_global_sink(std::sync::Arc::new(sink));
            Ok(())
        }
        Err(e) => {
            eprintln!("error: cannot open --metrics-out {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    // Initializes telemetry from RUMBA_METRICS_OUT and flushes the final
    // pool-usage event when main returns.
    let _obs = rumba_obs::guard();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command {
        Command::Help => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Command::List => {
            print!("{}", commands::list());
            return ExitCode::SUCCESS;
        }
        Command::Train { kernel, seed, threads, simd, metrics_out } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            if let Some(path) = metrics_out {
                if let Err(code) = install_metrics_sink(&path) {
                    return code;
                }
            }
            commands::train(&kernel, seed)
        }
        Command::Run { kernel, seed, checker, mode, window, threads, simd, metrics_out } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            if let Some(path) = metrics_out {
                if let Err(code) = install_metrics_sink(&path) {
                    return code;
                }
            }
            commands::run(&kernel, seed, checker, mode, window)
        }
        Command::Faults { kernels, seed, rate, window, threads, simd, metrics_out } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            if let Some(path) = metrics_out {
                if let Err(code) = install_metrics_sink(&path) {
                    return code;
                }
            }
            commands::faults(&kernels, seed, rate, window)
        }
        Command::Compensate { kernels, seed, toq, threads, simd, metrics_out } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            if let Some(path) = metrics_out {
                if let Err(code) = install_metrics_sink(&path) {
                    return code;
                }
            }
            commands::compensate(&kernels, seed, toq)
        }
        Command::Zoo { kernels, seed, toq, tiers, threads, simd, metrics_out } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            if let Some(path) = metrics_out {
                if let Err(code) = install_metrics_sink(&path) {
                    return code;
                }
            }
            commands::zoo(&kernels, seed, toq, tiers)
        }
        Command::Drift { kernels, seed, window, threads, simd, metrics_out } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            if let Some(path) = metrics_out {
                if let Err(code) = install_metrics_sink(&path) {
                    return code;
                }
            }
            commands::drift(&kernels, seed, window)
        }
        Command::Report { path } => commands::report(&path),
        Command::Purity { kernel } => commands::purity(&kernel),
        Command::Serve { socket, tcp, shards, threads, simd } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            commands::serve(socket.as_deref(), tcp.as_deref(), shards)
        }
        Command::BenchServe { seed, tenants, requests, json_out, shards, threads, simd } => {
            rumba_parallel::set_thread_override(threads);
            rumba_nn::set_simd_override(simd);
            commands::bench_serve(seed, tenants, requests, json_out.as_deref(), shards)
        }
    };

    match result {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
