//! Library half of the `rumba` command-line driver: the argument grammar
//! ([`args`]) and the subcommand implementations ([`commands`]), separated
//! from `main` so both are unit-testable.

pub mod args;
pub mod commands;
