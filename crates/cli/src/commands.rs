//! Subcommand implementations. Each returns its output as a `String` so
//! tests can assert on it; `main` just prints.

use rumba_accel::CheckerUnit;
use rumba_apps::{all_kernels, kernel_by_name, Kernel, Split};
use rumba_core::report::RunReport;
use rumba_core::runtime::{RumbaSystem, RuntimeConfig};
use rumba_core::trainer::{train_app, OfflineConfig, TrainedApp};
use rumba_core::tuner::{calibrate_threshold, Tuner, TuningMode};
use rumba_energy::WorkloadProfile;
use rumba_nn::encode_model;
use rumba_predict::{EmaDetector, ErrorEstimator, MaxEnsemble, TableErrors, TableParams};

use crate::args::{CheckerChoice, ModeChoice};

/// Error type for command execution: a human-readable message.
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

macro_rules! wrap_error {
    ($($source:ty),+ $(,)?) => {
        $(impl From<$source> for CommandError {
            fn from(e: $source) -> Self {
                CommandError(e.to_string())
            }
        })+
    };
}

wrap_error!(
    rumba_core::RumbaError,
    rumba_nn::NnError,
    rumba_predict::PredictError,
    rumba_apps::purity::PurityViolation,
);

fn resolve(kernel: &str) -> Result<Box<dyn Kernel>, CommandError> {
    kernel_by_name(kernel)
        .ok_or_else(|| CommandError(format!("unknown benchmark '{kernel}' (try 'rumba list')")))
}

/// `rumba list`.
#[must_use]
pub fn list() -> String {
    let mut out = String::from("available benchmarks (Table 1):\n");
    for k in all_kernels() {
        out.push_str(&format!(
            "  {:<14} {:<20} {} -> {} | {}\n",
            k.name(),
            k.domain(),
            k.input_dim(),
            k.output_dim(),
            k.metric().paper_name()
        ));
    }
    out.push_str("  gaussian       Didactic (Figure 5)\n");
    out
}

/// `rumba train <kernel>`.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or training failures.
pub fn train(kernel: &str, seed: u64) -> Result<String, CommandError> {
    let kernel = resolve(kernel)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;
    let mean_err = app.train_errors.iter().sum::<f64>() / app.train_errors.len().max(1) as f64;
    let image_words = encode_model(app.rumba_npu.model()).len();
    Ok(format!(
        "trained {}\n  accelerator      {} ({} cycles/invocation, {} MACs)\n  baseline (NPU)   {} ({} cycles/invocation)\n  train error      {:.2}% mean over {} invocations\n  tree checker     depth {}, {} nodes\n  config image     {} words\n",
        app.name,
        app.rumba_npu.model().mlp().topology_string(),
        app.rumba_npu.cycles_per_invocation(),
        app.rumba_npu.macs_per_invocation(),
        app.baseline_npu.model().mlp().topology_string(),
        app.baseline_npu.cycles_per_invocation(),
        mean_err * 100.0,
        app.train_errors.len(),
        app.tree.tree().depth(),
        app.tree.tree().node_count(),
        image_words,
    ))
}

fn build_checker(
    choice: CheckerChoice,
    app: &TrainedApp,
    kernel: &dyn Kernel,
    seed: u64,
) -> Result<Box<dyn ErrorEstimator>, CommandError> {
    Ok(match choice {
        CheckerChoice::Linear => Box::new(app.linear.clone()),
        CheckerChoice::Tree => Box::new(app.tree.clone()),
        CheckerChoice::Ema => Box::new(EmaDetector::new(app.ema_window, kernel.output_dim())?),
        CheckerChoice::Evp => Box::new(app.evp.clone()),
        CheckerChoice::Table => {
            let train = kernel.generate(Split::Train, seed);
            let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
            Box::new(TableErrors::train(&rows, &app.train_errors, &TableParams::default())?)
        }
        CheckerChoice::Ensemble => Box::new(MaxEnsemble::new(
            Box::new(app.tree.clone()),
            Box::new(EmaDetector::new(app.ema_window, kernel.output_dim())?),
        )),
    })
}

/// `rumba run <kernel> ...`.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks, bad configurations,
/// or execution failures.
pub fn run(
    kernel: &str,
    seed: u64,
    checker: CheckerChoice,
    mode: ModeChoice,
    window: usize,
) -> Result<String, CommandError> {
    let kernel = resolve(kernel)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;

    // Calibrate the initial threshold on the train split with the deployed
    // checker itself.
    let train = kernel.generate(Split::Train, seed);
    let mut probe = build_checker(checker, &app, kernel.as_ref(), seed)?;
    let mut scratch = rumba_nn::Scratch::new();
    let mut approx_train = rumba_nn::Matrix::default();
    app.rumba_npu.invoke_batch(train.inputs_view(), &mut scratch, &mut approx_train)?;
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| probe.estimate(train.input(i), approx_train.row(i))).collect();
    let target = match mode {
        ModeChoice::Toq(q) => 1.0 - q,
        _ => 0.10,
    };
    let threshold = calibrate_threshold(&predicted, &app.train_errors, target);

    let tuning = match mode {
        ModeChoice::Toq(q) => TuningMode::TargetQuality { toq: q },
        ModeChoice::Energy(budget) => TuningMode::EnergyBudget { budget },
        ModeChoice::Quality => TuningMode::BestQuality,
    };
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(build_checker(checker, &app, kernel.as_ref(), seed)?),
        Tuner::new(tuning, threshold)?,
        RuntimeConfig { window, ..RuntimeConfig::default() },
    )?;

    let test = kernel.generate(Split::Test, seed);
    let outcome = system.run(kernel.as_ref(), &test)?;
    let workload = WorkloadProfile {
        invocations: test.len(),
        cpu_cycles_per_invocation: kernel.cpu_cycles(),
        kernel_fraction: kernel.kernel_fraction(),
    };
    let unchecked: f64 = {
        let errs = rumba_core::trainer::invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)?;
        errs.iter().sum::<f64>() / errs.len() as f64
    };
    Ok(format!(
        "unchecked output error: {:.2}%\n{}\n",
        unchecked * 100.0,
        RunReport::new(kernel.name(), &outcome, &workload)
    ))
}

/// `rumba report <path.jsonl>` — summarize a telemetry stream produced
/// with `--metrics-out` (or `RUMBA_METRICS_OUT`).
///
/// # Errors
///
/// Returns a [`CommandError`] when the file cannot be read.
pub fn report(path: &str) -> Result<String, CommandError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CommandError(format!("cannot read {path}: {e}")))?;
    let report = rumba_obs::Report::from_lines(&text);
    Ok(format!("telemetry: {path}\n{report}"))
}

/// `rumba purity <kernel>`.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or detected purity
/// violations.
pub fn purity(kernel: &str) -> Result<String, CommandError> {
    let kernel = resolve(kernel)?;
    rumba_apps::purity::verify_purity(kernel.as_ref(), 50, 42)?;
    Ok(format!(
        "{}: pure — safe for selective re-execution (50 probes: deterministic,\noutput-buffer independent, isolated across invocations)\n",
        kernel.name()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_mentions_every_benchmark() {
        let text = list();
        for name in ["blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn unknown_kernel_is_a_clean_error() {
        let e = train("doom", 1).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn train_reports_topology_and_image() {
        let text = train("gaussian", 42).unwrap();
        assert!(text.contains("1->2->1"));
        assert!(text.contains("config image"));
    }

    #[test]
    fn run_produces_a_report() {
        let text = run("gaussian", 42, CheckerChoice::Tree, ModeChoice::Toq(0.95), 256).unwrap();
        assert!(text.contains("unchecked output error"));
        assert!(text.contains("rumba run: gaussian"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn run_supports_every_checker() {
        for checker in [
            CheckerChoice::Linear,
            CheckerChoice::Ema,
            CheckerChoice::Table,
            CheckerChoice::Ensemble,
        ] {
            let text = run("gaussian", 42, checker, ModeChoice::Quality, 128).unwrap();
            assert!(text.contains("rumba run"), "{checker:?}");
        }
    }

    #[test]
    fn purity_passes_for_shipped_kernels() {
        let text = purity("sobel").unwrap();
        assert!(text.contains("pure"));
    }

    #[test]
    fn report_summarizes_a_jsonl_file() {
        use rumba_obs::Event;
        let path = std::env::temp_dir().join(format!("rumba-report-{}.jsonl", std::process::id()));
        let lines = [
            Event::WindowEnd {
                window: 0,
                threshold: 0.1,
                fired: 7,
                suppressed_by_budget: 0,
                mean_unfixed_pred: 0.01,
                cpu_capacity: 12,
                queue_depth_max: 1,
            }
            .to_jsonl(),
            Event::Cache { hit: true, key: "gaussian-s42".into() }.to_jsonl(),
        ]
        .join("\n");
        std::fs::write(&path, lines).unwrap();
        let text = report(path.to_str().unwrap()).unwrap();
        assert!(text.contains("windows: 1"), "{text}");
        assert!(text.contains("cache: 1 hits, 0 misses"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_on_missing_file_is_a_clean_error() {
        let e = report("/nonexistent/rumba.jsonl").unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
