//! Subcommand implementations. Each returns its output as a `String` so
//! tests can assert on it; `main` just prints.

use rumba_accel::CheckerUnit;
use rumba_apps::{all_kernels, kernel_by_name, Kernel, Split};
use rumba_core::context::AppContext;
use rumba_core::openworld::{scenarios, ScenarioStream};
use rumba_core::report::RunReport;
use rumba_core::runtime::{RefitConfig, RumbaSystem, RuntimeConfig, WatchdogConfig};
use rumba_core::scheme::SchemeKind;
use rumba_core::trainer::{invocation_errors, train_app, OfflineConfig, TrainedApp};
use rumba_core::tuner::{calibrate_threshold, Tuner, TuningMode};
use rumba_core::zoo::train_zoo;
use rumba_energy::{EnergyParams, SystemModel, WorkloadProfile};
use rumba_faults::{FaultModel, FaultPlan};
use rumba_nn::encode_model;
use rumba_predict::{EmaDetector, ErrorEstimator, MaxEnsemble, TableErrors, TableParams};

use crate::args::{CheckerChoice, ModeChoice};

/// Error type for command execution: a human-readable message.
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

macro_rules! wrap_error {
    ($($source:ty),+ $(,)?) => {
        $(impl From<$source> for CommandError {
            fn from(e: $source) -> Self {
                CommandError(e.to_string())
            }
        })+
    };
}

wrap_error!(
    rumba_core::RumbaError,
    rumba_nn::NnError,
    rumba_predict::PredictError,
    rumba_apps::purity::PurityViolation,
);

fn resolve(kernel: &str) -> Result<Box<dyn Kernel>, CommandError> {
    kernel_by_name(kernel)
        .ok_or_else(|| CommandError(format!("unknown benchmark '{kernel}' (try 'rumba list')")))
}

/// `rumba list`.
#[must_use]
pub fn list() -> String {
    let mut out = String::from("available benchmarks (Table 1):\n");
    for k in all_kernels() {
        out.push_str(&format!(
            "  {:<14} {:<20} {} -> {} | {}\n",
            k.name(),
            k.domain(),
            k.input_dim(),
            k.output_dim(),
            k.metric().paper_name()
        ));
    }
    out.push_str("  gaussian       Didactic (Figure 5)\n");
    out
}

/// `rumba train <kernel>`.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or training failures.
pub fn train(kernel: &str, seed: u64) -> Result<String, CommandError> {
    let kernel = resolve(kernel)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;
    let mean_err = app.train_errors.iter().sum::<f64>() / app.train_errors.len().max(1) as f64;
    let image_words = encode_model(app.rumba_npu.model()).len();
    Ok(format!(
        "trained {}\n  accelerator      {} ({} cycles/invocation, {} MACs)\n  baseline (NPU)   {} ({} cycles/invocation)\n  train error      {:.2}% mean over {} invocations\n  tree checker     depth {}, {} nodes\n  config image     {} words\n",
        app.name,
        app.rumba_npu.model().mlp().topology_string(),
        app.rumba_npu.cycles_per_invocation(),
        app.rumba_npu.macs_per_invocation(),
        app.baseline_npu.model().mlp().topology_string(),
        app.baseline_npu.cycles_per_invocation(),
        mean_err * 100.0,
        app.train_errors.len(),
        app.tree.tree().depth(),
        app.tree.tree().node_count(),
        image_words,
    ))
}

fn build_checker(
    choice: CheckerChoice,
    app: &TrainedApp,
    kernel: &dyn Kernel,
    seed: u64,
) -> Result<Box<dyn ErrorEstimator>, CommandError> {
    Ok(match choice {
        CheckerChoice::Linear => Box::new(app.linear.clone()),
        CheckerChoice::Tree => Box::new(app.tree.clone()),
        CheckerChoice::Ema => Box::new(EmaDetector::new(app.ema_window, kernel.output_dim())?),
        CheckerChoice::Evp => Box::new(app.evp.clone()),
        CheckerChoice::Table => {
            let train = kernel.generate(Split::Train, seed);
            let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
            Box::new(TableErrors::train(&rows, &app.train_errors, &TableParams::default())?)
        }
        CheckerChoice::Ensemble => Box::new(MaxEnsemble::new(
            Box::new(app.tree.clone()),
            Box::new(EmaDetector::new(app.ema_window, kernel.output_dim())?),
        )),
    })
}

/// `rumba run <kernel> ...`.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks, bad configurations,
/// or execution failures.
pub fn run(
    kernel: &str,
    seed: u64,
    checker: CheckerChoice,
    mode: ModeChoice,
    window: usize,
) -> Result<String, CommandError> {
    let kernel = resolve(kernel)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;

    // Calibrate the initial threshold on the train split with the deployed
    // checker itself.
    let train = kernel.generate(Split::Train, seed);
    let mut probe = build_checker(checker, &app, kernel.as_ref(), seed)?;
    let mut scratch = rumba_nn::Scratch::new();
    let mut approx_train = rumba_nn::Matrix::default();
    app.rumba_npu.invoke_batch(train.inputs_view(), &mut scratch, &mut approx_train)?;
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| probe.estimate(train.input(i), approx_train.row(i))).collect();
    let target = match mode {
        ModeChoice::Toq(q) => 1.0 - q,
        _ => 0.10,
    };
    let threshold = calibrate_threshold(&predicted, &app.train_errors, target);

    let tuning = match mode {
        ModeChoice::Toq(q) => TuningMode::TargetQuality { toq: q },
        ModeChoice::Energy(budget) => TuningMode::EnergyBudget { budget },
        ModeChoice::Quality => TuningMode::BestQuality,
    };
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(build_checker(checker, &app, kernel.as_ref(), seed)?),
        Tuner::new(tuning, threshold)?,
        RuntimeConfig { window, ..RuntimeConfig::default() },
    )?;

    let test = kernel.generate(Split::Test, seed);
    let outcome = system.run(kernel.as_ref(), &test)?;
    let workload = WorkloadProfile {
        invocations: test.len(),
        cpu_cycles_per_invocation: kernel.cpu_cycles(),
        kernel_fraction: kernel.kernel_fraction(),
    };
    let unchecked: f64 = {
        let errs = rumba_core::trainer::invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)?;
        errs.iter().sum::<f64>() / errs.len() as f64
    };
    Ok(format!(
        "unchecked output error: {:.2}%\n{}\n",
        unchecked * 100.0,
        RunReport::new(kernel.name(), &outcome, &workload)
    ))
}

/// Checkers the coverage table evaluates (the §3.2 taxonomy heads:
/// input-based linear/tree, output-based EMA).
const COVERAGE_CHECKERS: [CheckerChoice; 3] =
    [CheckerChoice::Linear, CheckerChoice::Tree, CheckerChoice::Ema];

/// Per-element injection rate for the coverage table. Fixed (rather than
/// tied to `--rate`) so the table always has enough strikes to report a
/// meaningful fraction; `--rate` governs the managed run below it.
const TABLE_RATE: f64 = 2e-2;

/// 95th percentile of the finite values (the clean-stream firing point
/// each checker is held to in the coverage table).
fn percentile95(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    // The 95th-percentile order statistic: the smallest element with at
    // least 95% of the sample at or below it, so under the strict `>`
    // firing rule at most 5% of clean scores fire. The old `len * 95 /
    // 100` cut overshot by one rank whenever 95·len divided evenly,
    // silently halving the clean firing rate at round sample sizes.
    v[(v.len() * 95).div_ceil(100) - 1]
}

/// One kernel's section of the `rumba faults` sweep: clean thresholds,
/// the detection-coverage table, and a managed NaN-injection run.
fn sweep_kernel(name: &str, seed: u64, rate: f64, window: usize) -> Result<String, CommandError> {
    let kernel = resolve(name)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;
    let test = kernel.generate(Split::Test, seed);
    let n = test.len();
    let out_dim = kernel.output_dim();

    // Clean accelerator outputs and, per checker, the clean 95th-percentile
    // prediction — the threshold the coverage table holds each checker to.
    let mut scratch = rumba_nn::Scratch::new();
    let mut clean = rumba_nn::Matrix::default();
    app.rumba_npu.invoke_batch(test.inputs_view(), &mut scratch, &mut clean)?;
    let mut thresholds = Vec::new();
    for choice in COVERAGE_CHECKERS {
        let mut checker = build_checker(choice, &app, kernel.as_ref(), seed)?;
        let preds: Vec<f64> =
            (0..n).map(|i| checker.estimate(test.input(i), clean.row(i))).collect();
        thresholds.push(percentile95(&preds));
    }

    let mut out = format!("== {name} ({n} test invocations, output dim {out_dim}) ==\n");
    out.push_str(&format!(
        "  clean 95th-pct thresholds: linear {:.4}  tree {:.4}  ema {:.4}\n",
        thresholds[0], thresholds[1], thresholds[2]
    ));
    out.push_str(&format!("  detection coverage (injection rate {TABLE_RATE}):\n"));
    out.push_str("    model          injected    linear      tree       ema\n");

    let models = [
        ("bit_flip", FaultModel::BitFlip { rate: TABLE_RATE }),
        ("non_finite", FaultModel::NonFinite { rate: TABLE_RATE }),
        ("stuck_at", FaultModel::StuckAt { start: n / 2, value: 0.0 }),
        ("input_drift", FaultModel::InputDrift { start: n / 2, ramp: 128, magnitude: 0.5 }),
    ];
    for (label, model) in models {
        let plan = FaultPlan::new(seed).with(model);
        let npu = app.rumba_npu.clone().with_fault_plan(plan.clone());
        let mut faulted = rumba_nn::Matrix::default();
        npu.invoke_batch(test.inputs_view(), &mut scratch, &mut faulted)?;

        // Which invocations were actually struck (pure replay of the
        // plan's decisions — no dependence on the data).
        let mut log = Vec::new();
        let injected: Vec<bool> = (0..n)
            .map(|i| {
                if plan.has_output_faults() {
                    plan.output_fault_events(i, out_dim, &mut log) > 0
                } else {
                    plan.drift_input(i, &mut [])
                }
            })
            .collect();
        let struck = injected.iter().filter(|&&s| s).count();

        out.push_str(&format!("    {label:<14} {struck:>8}"));
        for (c, choice) in COVERAGE_CHECKERS.into_iter().enumerate() {
            let mut checker = build_checker(choice, &app, kernel.as_ref(), seed)?;
            let mut detected = 0usize;
            for (i, &struck_here) in injected.iter().enumerate() {
                let pred = checker.estimate(test.input(i), faulted.row(i));
                if struck_here && pred > thresholds[c] {
                    detected += 1;
                }
            }
            if struck == 0 {
                out.push_str("        --");
            } else {
                out.push_str(&format!("   {:>6.1}%", 100.0 * detected as f64 / struck as f64));
            }
        }
        out.push('\n');
    }

    // Managed NaN-injection run: the full online loop (tree checker,
    // watchdog armed) under `--rate` NaN corruption. Quarantine must keep
    // the merged stream finite — a non-finite output is a hard failure so
    // CI can gate on the exit code.
    let plan = FaultPlan::new(seed).with(FaultModel::NonFinite { rate });
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(build_checker(CheckerChoice::Tree, &app, kernel.as_ref(), seed)?),
        Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, thresholds[1].max(1e-9))?,
        RuntimeConfig {
            window,
            watchdog: Some(WatchdogConfig::default()),
            ..RuntimeConfig::default()
        },
    )?;
    system.set_fault_plan(Some(plan));
    let outcome = system.run(kernel.as_ref(), &test)?;
    if !outcome.merged_outputs.iter().all(|v| v.is_finite()) {
        return Err(CommandError(format!(
            "{name}: managed run leaked a non-finite merged output (quarantine failed)"
        )));
    }
    let s = &outcome.fault_stats;
    out.push_str(&format!(
        "  managed NaN run (tree checker, watchdog on, rate {rate:e}):\n    fixes {}  quarantined {}  detected {}  escaped {}  recalibrations {}  fallbacks {}  stage {:?}\n    output error {:.2}%  merged outputs: all finite\n",
        outcome.fixes,
        s.quarantined,
        s.detected,
        s.escaped,
        s.recalibrations,
        s.fallbacks,
        outcome.degrade_stage,
        outcome.output_error * 100.0,
    ));
    Ok(out)
}

/// `rumba faults [flags]` — fault-injection sweep: a Fig.-13-style
/// detection-coverage table (checker x fault model) per kernel, then a
/// managed NaN-injection run demonstrating quarantine and the degradation
/// watchdog. Fails if any managed run leaks a non-finite merged output.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks, training or
/// execution failures, or a leaked non-finite output.
pub fn faults(
    kernels: &[String],
    seed: u64,
    rate: f64,
    window: usize,
) -> Result<String, CommandError> {
    let names: Vec<String> =
        if kernels.is_empty() { vec!["gaussian".into(), "fft".into()] } else { kernels.to_vec() };
    let mut out = format!("rumba faults: seed {seed}, managed-run rate {rate:e}\n\n");
    for name in &names {
        out.push_str(&sweep_kernel(name, seed, rate, window)?);
        out.push('\n');
    }
    Ok(out)
}

/// One kernel's section of the `rumba compensate` sweep: for each
/// Compensate scheme, the re-execution-only fix count that meets the TOQ,
/// the cheapest compensate/re-execute split that still meets it, and the
/// energy per repaired invocation of both. Returns whether the kernel met
/// the TOQ with at least 25% fewer CPU re-executions under either scheme.
fn compensate_kernel(
    name: &str,
    seed: u64,
    toq: f64,
    out: &mut String,
) -> Result<bool, CommandError> {
    use std::fmt::Write;

    let kernel = resolve(name)?;
    let ctx = AppContext::build(kernel.as_ref(), seed)?;
    let n = ctx.len();
    let out_dim = kernel.output_dim();
    // The target is relative to the accelerator's own quality loss: a TOQ
    // of 0.9 obliges recovery to erase 90% of the unchecked output error.
    // (An absolute cut would be vacuous for kernels whose approximation is
    // already tighter than 1 - toq.)
    let target = (1.0 - toq) * ctx.unchecked_output_error();
    let metric = ctx.metric();
    let test = ctx.test_data();
    let model = SystemModel::new(EnergyParams::default());
    let workload = ctx.workload();
    let total_err: f64 = ctx.true_errors().iter().sum();

    let _ = writeln!(
        out,
        "== {name} ({n} test invocations, unchecked error {:.2}%, target {:.2}%) ==",
        ctx.unchecked_output_error() * 100.0,
        target * 100.0,
    );

    let mut kernel_meets = false;
    for scheme in [SchemeKind::CompensateLinear, SchemeKind::CompensateTree] {
        let base = scheme.detection_base();
        let scores = ctx.scores(base);
        let Some(k_re) = ctx.fixes_for_target_error(base, target) else {
            let _ = writeln!(out, "  {:<17} cannot reach the target at any budget", scheme.label());
            continue;
        };
        if k_re == 0 {
            let _ = writeln!(out, "  {:<17} meets the target with no fixes at all", scheme.label());
            kernel_meets = true;
            continue;
        }

        // The compensable repair of every invocation: subtract the
        // checker's signed estimate from every output word. The gain of
        // compensating a row is how much of its true error the repair
        // erases (negative when the signed estimate points the wrong way).
        let signed_est: &dyn ErrorEstimator = match base {
            SchemeKind::LinearErrors => &ctx.trained().linear,
            _ => &ctx.trained().tree,
        };
        let order = scores.fix_order();
        let gain: Vec<f64> = order
            .iter()
            .map(|&i| {
                let approx = &ctx.approx_outputs()[i * out_dim..(i + 1) * out_dim];
                let s = signed_est.estimate_signed(test.input(i), approx, scores.scores()[i]);
                let repaired: Vec<f64> = approx.iter().map(|a| a - s).collect();
                ctx.true_errors()[i] - metric.invocation_error(test.target(i), &repaired)
            })
            .collect();

        // The mixed policy mirrors the runtime's band mechanism: in score
        // order, the worst `m` rows re-execute on the CPU (score above the
        // band), the next `c` rows are compensated in place (score inside
        // the band), everything below the threshold is left alone. For a
        // given m the best band extends to whatever prefix of the
        // remaining rows maximizes the erased error mass; the minimal m
        // meeting the target always exists because m = k_re with an empty
        // band is exactly re-execution-only.
        let mut gain_prefix = vec![0.0f64; n + 1];
        for (j, g) in gain.iter().enumerate() {
            gain_prefix[j + 1] = gain_prefix[j] + g;
        }
        let mut best_to_right = vec![(0.0f64, 0usize); n + 1];
        best_to_right[n] = (gain_prefix[n], n);
        for j in (0..n).rev() {
            // Ties keep the smaller band end: same erased mass, fewer
            // compensations.
            best_to_right[j] = if gain_prefix[j] >= best_to_right[j + 1].0 {
                (gain_prefix[j], j)
            } else {
                best_to_right[j + 1]
            };
        }
        let mut true_prefix = vec![0.0f64; n + 1];
        for (j, &i) in order.iter().enumerate() {
            true_prefix[j + 1] = true_prefix[j] + ctx.true_errors()[i];
        }
        let band_mass = |m: usize| best_to_right[m].0 - gain_prefix[m];
        let mixed_error = |m: usize| (total_err - true_prefix[m] - band_mass(m)) / n as f64;
        let m = (0..=k_re)
            .find(|&m| mixed_error(m) <= target)
            .expect("m = k_re with an empty band is re-execution-only");
        let compensated = best_to_right[m].1 - m;

        let reexec_error = ctx.error_after_fixing(base, k_re);
        let reduction = 100.0 * (k_re - m) as f64 / k_re as f64;
        let cost_re = model.accelerated(&workload, &ctx.scheme_activity(base, k_re));
        let mut mixed_activity = ctx.scheme_activity(base, m);
        mixed_activity.compensations = compensated;
        let (cost_mix, breakdown) = model.accelerated_detailed(&workload, &mixed_activity);

        let _ = writeln!(
            out,
            "  {:<17} reexec-only: {k_re} fixes -> {:.2}% error, {:.0} nJ/fix",
            scheme.label(),
            reexec_error * 100.0,
            cost_re.energy_nj / k_re as f64,
        );
        let _ = writeln!(
            out,
            "  {:<17} mixed: {m} reexec + {compensated} compensated -> {:.2}% error, {:.0} nJ/fix",
            "",
            mixed_error(m) * 100.0,
            cost_mix.energy_nj / (m + compensated).max(1) as f64,
        );
        let _ = writeln!(
            out,
            "  {:<17} {reduction:.1}% fewer CPU re-executions (compensation energy {:.1} nJ)",
            "", breakdown.compensation_nj,
        );
        if reduction >= 25.0 {
            kernel_meets = true;
        }
    }
    Ok(kernel_meets)
}

/// `rumba compensate [flags]` — predict-and-compensate sweep over the
/// offline analysis: how much CPU re-execution the signed-error
/// compensation path saves at equal output quality, and what it costs in
/// energy.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or training failures.
pub fn compensate(kernels: &[String], seed: u64, toq: f64) -> Result<String, CommandError> {
    let names: Vec<String> = if kernels.is_empty() {
        vec!["gaussian".into(), "fft".into(), "inversek2j".into()]
    } else {
        kernels.to_vec()
    };
    let mut out = format!("rumba compensate: seed {seed}, target output quality {toq}\n\n");
    let mut met = 0usize;
    for name in &names {
        if compensate_kernel(name, seed, toq, &mut out)? {
            met += 1;
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{met} of {} kernels meet the target with >=25% fewer CPU re-executions\n",
        names.len()
    ));
    Ok(out)
}

/// One kernel's section of the `rumba zoo` sweep: train the tier ladder,
/// run the test stream once through the single-model system and once
/// through the zoo-routed system at the same TOQ, and compare modeled
/// energy. Returns whether the routed run met the TOQ at strictly lower
/// modeled energy than the single-model baseline.
fn zoo_kernel(
    name: &str,
    seed: u64,
    toq: f64,
    tiers: usize,
    out: &mut String,
) -> Result<bool, CommandError> {
    use std::fmt::Write;

    let kernel = resolve(name)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;
    let ladder = train_zoo(kernel.as_ref(), &app, &cfg, tiers)?;

    // Calibrate the firing threshold exactly as `rumba run --toq` does:
    // tree checker probed on the train split, budgeted at 1 - toq.
    let train = kernel.generate(Split::Train, seed);
    let mut probe = app.tree.clone();
    let mut scratch = rumba_nn::Scratch::new();
    let mut approx_train = rumba_nn::Matrix::default();
    app.rumba_npu.invoke_batch(train.inputs_view(), &mut scratch, &mut approx_train)?;
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| probe.estimate(train.input(i), approx_train.row(i))).collect();
    let budget = 1.0 - toq;
    let threshold = calibrate_threshold(&predicted, &app.train_errors, budget);

    let build = || -> Result<RumbaSystem, CommandError> {
        Ok(RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(TuningMode::TargetQuality { toq }, threshold)?,
            RuntimeConfig::default(),
        )?)
    };

    let test = kernel.generate(Split::Test, seed);
    let n = test.len();
    let workload = WorkloadProfile {
        invocations: n,
        cpu_cycles_per_invocation: kernel.cpu_cycles(),
        kernel_fraction: kernel.kernel_fraction(),
    };
    let model = SystemModel::new(EnergyParams::default());

    let mut single = build()?;
    let base = single.run(kernel.as_ref(), &test)?;
    let base_cost = model.accelerated(&workload, &base.activity);

    // The routing bar is calibrated on the train split with the same
    // mean-error contract as the firing threshold: the widest bar whose
    // routed mean measured error still fits 1 - toq. Rows the checker
    // fires on are masked to zero error first — the tree checker is
    // input-based, so its fire set is the same whichever tier computed
    // the row, and a fired row re-executes exactly. Routing those rows
    // cheap is free, and masking them lets the bar widen to where the
    // cheap tiers carry real traffic.
    let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
    let tier_errors: Vec<Vec<f64>> = ladder
        .tiers()
        .iter()
        .map(|t| {
            let mut errs = invocation_errors(kernel.as_ref(), &t.npu, &train)?;
            for (e, p) in errs.iter_mut().zip(&predicted) {
                if *p > threshold {
                    *e = 0.0;
                }
            }
            Ok(errs)
        })
        .collect::<Result<_, CommandError>>()?;
    // A tenth of the budget is held back as generalization margin: the
    // tiers and routers were fit on these same rows, so a bar calibrated
    // to the full budget sits exactly at the train-split edge.
    let bar = ladder.calibrate_bar(&rows, &tier_errors, 0.9 * budget);
    let mut routed_sys = build()?;
    routed_sys.attach_zoo(ladder.clone(), bar)?;
    let routed = routed_sys.run(kernel.as_ref(), &test)?;
    let routed_cost = model.accelerated(&workload, &routed.activity);
    let mix = routed_sys.stream_tiers().to_vec();

    let _ = writeln!(out, "== {name} ({n} test invocations, TOQ {toq}) ==");
    let ladder_desc: Vec<String> = ladder
        .tiers()
        .iter()
        .enumerate()
        .map(|(t, tier)| {
            format!(
                "t{t} {} cyc ({:.2}% train err)",
                tier.npu.cycles_per_invocation(),
                tier.train_error * 100.0,
            )
        })
        .collect();
    let _ = writeln!(out, "  ladder: {} + exact CPU", ladder_desc.join("  "));
    let _ = writeln!(
        out,
        "  single-model: error {:.2}%  fixes {}  energy {:.0} nJ",
        base.output_error * 100.0,
        base.fixes,
        base_cost.energy_nj,
    );
    let _ = writeln!(
        out,
        "  zoo-routed:   error {:.2}%  fixes {}  energy {:.0} nJ",
        routed.output_error * 100.0,
        routed.fixes,
        routed_cost.energy_nj,
    );
    let (cpu, models) = mix.split_last().expect("tier counts non-empty");
    let mix_desc: Vec<String> =
        models.iter().enumerate().map(|(t, c)| format!("t{t}:{c}")).collect();
    let _ = writeln!(out, "  tier mix: {} cpu:{cpu}", mix_desc.join(" "));

    let meets_toq = routed.output_error <= budget;
    let saves = routed_cost.energy_nj < base_cost.energy_nj;
    let saved = 100.0 * (base_cost.energy_nj - routed_cost.energy_nj) / base_cost.energy_nj;
    let _ = writeln!(
        out,
        "  energy saved: {saved:.1}%  (TOQ {})",
        if meets_toq { "met" } else { "missed" },
    );
    Ok(meets_toq && saves)
}

/// `rumba zoo [flags]` — the model-zoo sweep: per kernel, train an
/// `n`-tier approximator ladder with a per-tier input-feature router and
/// report the modeled energy the router saves at equal target output
/// quality versus the single-model system.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or training
/// failures.
pub fn zoo(kernels: &[String], seed: u64, toq: f64, tiers: usize) -> Result<String, CommandError> {
    let names: Vec<String> = if kernels.is_empty() {
        vec!["gaussian".into(), "fft".into(), "inversek2j".into()]
    } else {
        kernels.to_vec()
    };
    let mut out = format!("rumba zoo: seed {seed}, TOQ {toq}, {tiers} tier(s)\n\n");
    let mut met = 0usize;
    for name in &names {
        if zoo_kernel(name, seed, toq, tiers, &mut out)? {
            met += 1;
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{met} of {} kernels meet the TOQ at lower modeled energy than the single model\n",
        names.len()
    ));
    Ok(out)
}

/// What one streamed open-world run measured: detection coverage over
/// the settled back half of the stream (of the invocations whose raw
/// accelerator output — under this run's fault plan — errs past the
/// quality limit, the share the checker fired on), plus the watchdog and
/// refit activity behind it.
struct DriftRun {
    /// `None` when the settled tail produced no bad rows.
    coverage: Option<f64>,
    bad: usize,
    recalibrations: u64,
    refit_epoch: u64,
}

/// Streams `n` scenario invocations through a freshly assembled system
/// and measures its tail detection coverage against the raw (unchecked)
/// accelerator outputs under the same fault plan.
#[allow(clippy::too_many_arguments)]
fn drift_run(
    kernel: &dyn Kernel,
    app: &TrainedApp,
    threshold: f64,
    window: usize,
    limit: f64,
    budget: f64,
    stream: &ScenarioStream<'_>,
    n: usize,
    faulted: bool,
    refit: bool,
) -> Result<DriftRun, CommandError> {
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree.clone())),
        Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, threshold)?,
        RuntimeConfig {
            window,
            watchdog: Some(WatchdogConfig {
                quality_limit: limit,
                patience: 2,
                fallback_patience: 8,
            }),
            ..RuntimeConfig::default()
        },
    )?;
    if refit {
        system.arm_refit(RefitConfig {
            capacity: 192,
            min_rows: 24,
            audit_period: 8,
            quality_budget: budget,
        })?;
    }
    let plan = if faulted { stream.fault_plan() } else { None };
    system.set_fault_plan(plan.clone());
    system.begin_stream();

    // The ground truth for "bad": what the tenant would consume with no
    // checker at all — the same accelerator under the same plan.
    let mut raw_npu = app.rumba_npu.clone();
    raw_npu.set_fault_plan(plan);

    let metric = kernel.metric();
    let out_dim = kernel.output_dim();
    let mut out = vec![0.0; out_dim];
    let mut exact = vec![0.0; out_dim];
    let tail = n / 2;
    let (mut bad, mut detected) = (0usize, 0usize);
    for i in 0..n {
        let input = stream.input(i);
        let outcome = system.process(kernel, &input, &mut out)?;
        if i < tail {
            continue; // ramp-up half: the regime is still changing
        }
        let raw = raw_npu.invoke_at(i, &input)?;
        kernel.compute(&input, &mut exact);
        if metric.invocation_error(&exact, &raw.outputs) > limit {
            bad += 1;
            if outcome.fired {
                detected += 1;
            }
        }
    }
    system.end_stream(kernel);
    Ok(DriftRun {
        coverage: (bad > 0).then(|| detected as f64 / bad as f64),
        bad,
        recalibrations: system.fault_stats().recalibrations,
        refit_epoch: system.refit_epoch(),
    })
}

fn coverage_cell(run: &DriftRun) -> String {
    run.coverage.map_or_else(|| "     --".into(), |c| format!("{c:.4} "))
}

/// One kernel's section of the `rumba drift` sweep. Returns
/// `(recovered, scenarios)`: how many scenarios the online refit
/// recovered (refit-on coverage at or above the clean-stream baseline
/// while reset-only sits below it) out of how many were swept.
fn drift_kernel(
    name: &str,
    seed: u64,
    window: usize,
    out: &mut String,
) -> Result<(usize, usize), CommandError> {
    use std::fmt::Write;

    let kernel = resolve(name)?;
    let cfg = OfflineConfig { seed, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;
    let pool = kernel.generate(Split::Test, seed);
    let n = 11 * window;

    // Scale the quality knobs to the kernel: "bad" is raw error past
    // twice the accelerator's clean mean, the refit re-calibrates to
    // half of it, and the firing threshold starts where the train split
    // says that budget is met.
    let clean_errs = invocation_errors(kernel.as_ref(), &app.rumba_npu, &pool)?;
    let mean_err = clean_errs.iter().sum::<f64>() / clean_errs.len().max(1) as f64;
    let limit = (2.0 * mean_err).max(1e-9);
    let budget = (0.5 * mean_err).max(1e-9);

    let train = kernel.generate(Split::Train, seed);
    let mut probe = app.tree.clone();
    let mut scratch = rumba_nn::Scratch::new();
    let mut approx_train = rumba_nn::Matrix::default();
    app.rumba_npu.invoke_batch(train.inputs_view(), &mut scratch, &mut approx_train)?;
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| probe.estimate(train.input(i), approx_train.row(i))).collect();
    let threshold = calibrate_threshold(&predicted, &app.train_errors, budget);

    let _ = writeln!(
        out,
        "== {name} ({n} stream invocations, quality limit {limit:.4}, refit budget {budget:.4}) =="
    );

    // Clean-stream baseline: the steady scenario, no fault plan, no
    // refit — the coverage a freshly calibrated checker delivers when
    // the world has not moved.
    let steady = scenarios().into_iter().find(|s| s.name == "steady").expect("steady scenario");
    let baseline_stream = ScenarioStream::new(&pool, seed, steady);
    let baseline = drift_run(
        kernel.as_ref(),
        &app,
        threshold,
        window,
        limit,
        budget,
        &baseline_stream,
        n,
        false,
        false,
    )?;
    let _ = writeln!(
        out,
        "  clean-stream baseline: tail coverage {} ({} bad tail rows)",
        coverage_cell(&baseline).trim_end(),
        baseline.bad,
    );

    let _ = writeln!(out, "  scenario      bad   refit-off   refit-on   recals  epoch  verdict");
    let (mut recovered, mut swept) = (0usize, 0usize);
    for scenario in scenarios() {
        let stream = ScenarioStream::new(&pool, seed, scenario);
        let off = drift_run(
            kernel.as_ref(),
            &app,
            threshold,
            window,
            limit,
            budget,
            &stream,
            n,
            true,
            false,
        )?;
        let on = drift_run(
            kernel.as_ref(),
            &app,
            threshold,
            window,
            limit,
            budget,
            &stream,
            n,
            true,
            true,
        )?;
        swept += 1;
        let verdict = match (baseline.coverage, off.coverage, on.coverage) {
            (Some(base), Some(o), Some(r)) if r >= base && o < base => {
                recovered += 1;
                "recovered"
            }
            (Some(base), _, Some(r)) if r >= base => "holds",
            _ => "--",
        };
        let _ = writeln!(
            out,
            "  {:<11} {:>5}   {:>9}   {:>8}   {:>2}/{:<2}  {:>5}  {verdict}",
            scenario.name,
            on.bad,
            coverage_cell(&off).trim_end(),
            coverage_cell(&on).trim_end(),
            off.recalibrations,
            on.recalibrations,
            on.refit_epoch,
        );
    }
    Ok((recovered, swept))
}

/// `rumba drift [flags]` — the open-world sweep: per kernel × generative
/// scenario, compare the detection coverage of the clean-stream
/// baseline, the reset-only watchdog, and the online checker re-fit.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or training
/// failures.
pub fn drift(kernels: &[String], seed: u64, window: usize) -> Result<String, CommandError> {
    let names: Vec<String> =
        if kernels.is_empty() { vec!["gaussian".into(), "fft".into()] } else { kernels.to_vec() };
    let mut out = format!("rumba drift: seed {seed}, window {window}\n\n");
    let (mut recovered, mut swept) = (0usize, 0usize);
    for name in &names {
        let (r, s) = drift_kernel(name, seed, window, &mut out)?;
        recovered += r;
        swept += s;
        out.push('\n');
    }
    out.push_str(&format!(
        "{recovered} of {swept} kernel x scenario combos: online refit restores detection \
         coverage to at least the clean-stream baseline where reset-only falls below it\n"
    ));
    Ok(out)
}

/// `rumba report <path.jsonl>` — summarize a telemetry stream produced
/// with `--metrics-out` (or `RUMBA_METRICS_OUT`).
///
/// # Errors
///
/// Returns a [`CommandError`] when the file cannot be read.
pub fn report(path: &str) -> Result<String, CommandError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CommandError(format!("cannot read {path}: {e}")))?;
    let report = rumba_obs::Report::from_lines(&text);
    Ok(format!("telemetry: {path}\n{report}"))
}

/// `rumba purity <kernel>`.
///
/// # Errors
///
/// Returns a [`CommandError`] for unknown benchmarks or detected purity
/// violations.
pub fn purity(kernel: &str) -> Result<String, CommandError> {
    let kernel = resolve(kernel)?;
    rumba_apps::purity::verify_purity(kernel.as_ref(), 50, 42)?;
    Ok(format!(
        "{}: pure — safe for selective re-execution (50 probes: deterministic,\noutput-buffer independent, isolated across invocations)\n",
        kernel.name()
    ))
}

/// `rumba serve [--socket PATH | --tcp HOST:PORT] [--shards N]`: runs the
/// multi-tenant NDJSON loop over stdin/stdout, or serves concurrent
/// connections on a Unix socket / TCP listener fanned into `shards`
/// shard threads until a client sends the `shutdown` op. Shutdown drains
/// every shard's in-flight sessions, unlinks the socket file and flushes
/// telemetry before the process exits.
///
/// # Errors
///
/// Returns a [`CommandError`] for socket or stream I/O failures, or when
/// both `--socket` and `--tcp` are given.
pub fn serve(
    socket: Option<&str>,
    tcp: Option<&str>,
    shards: usize,
) -> Result<String, CommandError> {
    let server = match (socket, tcp) {
        (Some(_), Some(_)) => {
            return Err(CommandError("choose one transport: --socket or --tcp".into()))
        }
        (None, None) => {
            let mut rt = rumba_serve::ServeRuntime::new();
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            rumba_serve::protocol::serve_loop(&mut rt, stdin.lock(), &mut out)
                .map_err(|e| CommandError(format!("serve: {e}")))?;
            return Ok(String::new());
        }
        (Some(path), None) => rumba_serve::transport::NetServer::bind_unix(path, shards)
            .map_err(|e| CommandError(format!("cannot bind {path}: {e}")))?,
        (None, Some(addr)) => rumba_serve::transport::NetServer::bind_tcp(addr, shards)
            .map_err(|e| CommandError(format!("cannot bind {addr}: {e}")))?,
    };
    let addr = server.addr().to_owned();
    eprintln!("serving on {addr} ({shards} shard(s))");
    let served = server.join().map_err(|e| CommandError(format!("serve on {addr}: {e}")))?;
    Ok(format!("served {served} connection(s) on {addr}\n"))
}

/// `rumba bench-serve`: replays the seeded multi-tenant workload and
/// returns the canonical protocol response trace (the serving
/// conformance artifact). With `shards`, the same workload runs over
/// real TCP through a sharded server, one lockstep connection per
/// tenant (the `ci/serve_net.golden` artifact). With `json_out`,
/// additionally sweeps the tenant count and the shard × client grid and
/// writes the throughput/queue-depth report there.
///
/// # Errors
///
/// Returns a [`CommandError`] if the workload cannot be opened or the
/// report cannot be written.
pub fn bench_serve(
    seed: u64,
    tenants: usize,
    requests: usize,
    json_out: Option<&str>,
    shards: Option<usize>,
) -> Result<String, CommandError> {
    let cfg = rumba_serve::bench::BenchConfig { seed, tenants, requests };
    let trace = match shards {
        Some(shards) => rumba_serve::bench::run_net_trace(cfg, shards)
            .map_err(|e| CommandError(e.to_string()))?,
        None => rumba_serve::bench::run_trace(cfg).map_err(|e| CommandError(e.to_string()))?.0,
    };
    if let Some(path) = json_out {
        let report =
            rumba_serve::bench::bench_report(cfg).map_err(|e| CommandError(e.to_string()))?;
        std::fs::write(path, format!("{report}\n"))
            .map_err(|e| CommandError(format!("cannot write {path}: {e}")))?;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_mentions_every_benchmark() {
        let text = list();
        for name in ["blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn unknown_kernel_is_a_clean_error() {
        let e = train("doom", 1).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn train_reports_topology_and_image() {
        let text = train("gaussian", 42).unwrap();
        assert!(text.contains("1->2->1"));
        assert!(text.contains("config image"));
    }

    #[test]
    fn run_produces_a_report() {
        let text = run("gaussian", 42, CheckerChoice::Tree, ModeChoice::Toq(0.95), 256).unwrap();
        assert!(text.contains("unchecked output error"));
        assert!(text.contains("rumba run: gaussian"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn run_supports_every_checker() {
        for checker in [
            CheckerChoice::Linear,
            CheckerChoice::Ema,
            CheckerChoice::Table,
            CheckerChoice::Ensemble,
        ] {
            let text = run("gaussian", 42, checker, ModeChoice::Quality, 128).unwrap();
            assert!(text.contains("rumba run"), "{checker:?}");
        }
    }

    #[test]
    fn faults_sweep_reports_coverage_and_stays_finite() {
        let text = faults(&["gaussian".into()], 42, 1e-3, 128).unwrap();
        assert!(text.contains("detection coverage"), "{text}");
        for model in ["bit_flip", "non_finite", "stuck_at", "input_drift"] {
            assert!(text.contains(model), "missing {model} row:\n{text}");
        }
        assert!(text.contains("managed NaN run"), "{text}");
        assert!(text.contains("all finite"), "{text}");
    }

    #[test]
    fn percentile95_leaves_five_percent_strictly_above_the_cut() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let cut = percentile95(&v);
        assert_eq!(cut, 95.0);
        assert_eq!(v.iter().filter(|&&x| x > cut).count(), 5);
        // Duplicated scores collapse onto the cut, not past it: under the
        // strict `>` rule none of them fire.
        let dup = vec![1.0; 40];
        assert_eq!(percentile95(&dup), 1.0);
        assert_eq!(dup.iter().filter(|&&x| x > percentile95(&dup)).count(), 0);
        assert_eq!(percentile95(&[]), 0.0);
        assert_eq!(percentile95(&[f64::INFINITY, 3.0]), 3.0);
    }

    #[test]
    fn compensate_sweep_reports_both_recovery_mixes() {
        let text = compensate(&["gaussian".into()], 42, 0.9).unwrap();
        assert!(text.contains("rumba compensate"), "{text}");
        assert!(text.contains("compensateLinear"), "{text}");
        assert!(text.contains("compensateTree"), "{text}");
        assert!(text.contains("reexec-only"), "{text}");
        assert!(text.contains("fewer CPU re-executions"), "{text}");
        // Deterministic: the sweep is golden-able.
        assert_eq!(text, compensate(&["gaussian".into()], 42, 0.9).unwrap());
    }

    #[test]
    fn zoo_sweep_reports_the_ladder_and_tier_mix() {
        let text = zoo(&["gaussian".into()], 42, 0.95, 2).unwrap();
        assert!(text.contains("rumba zoo"), "{text}");
        assert!(text.contains("== gaussian"), "{text}");
        assert!(text.contains("ladder:"), "{text}");
        assert!(text.contains("single-model:"), "{text}");
        assert!(text.contains("zoo-routed:"), "{text}");
        assert!(text.contains("tier mix:"), "{text}");
        assert!(text.contains("kernels meet the TOQ"), "{text}");
        // Deterministic: the sweep is golden-able.
        assert_eq!(text, zoo(&["gaussian".into()], 42, 0.95, 2).unwrap());
    }

    #[test]
    fn drift_sweep_recovers_coverage_and_is_deterministic() {
        // The acceptance contract: at seed 7 at least one kernel ×
        // scenario must come out "recovered" — online refit restores
        // detection coverage to at least the clean-stream baseline while
        // the reset-only watchdog sits below it.
        let text = drift(&["gaussian".into()], 7, 128).unwrap();
        assert!(text.contains("rumba drift"), "{text}");
        assert!(text.contains("== gaussian"), "{text}");
        assert!(text.contains("clean-stream baseline"), "{text}");
        for scenario in ["steady", "drift", "diurnal", "burst"] {
            assert!(text.contains(scenario), "missing {scenario} row:\n{text}");
        }
        assert!(text.contains("recovered"), "{text}");
        // Deterministic: the sweep is golden-able.
        assert_eq!(text, drift(&["gaussian".into()], 7, 128).unwrap());
    }

    #[test]
    fn drift_rejects_unknown_kernels() {
        let e = drift(&["doom".into()], 1, 128).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn zoo_rejects_unknown_kernels() {
        let e = zoo(&["doom".into()], 1, 0.95, 2).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn compensate_rejects_unknown_kernels() {
        let e = compensate(&["doom".into()], 1, 0.9).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn faults_rejects_unknown_kernels() {
        let e = faults(&["doom".into()], 1, 1e-3, 128).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn purity_passes_for_shipped_kernels() {
        let text = purity("sobel").unwrap();
        assert!(text.contains("pure"));
    }

    #[test]
    fn report_summarizes_a_jsonl_file() {
        use rumba_obs::Event;
        let path = std::env::temp_dir().join(format!("rumba-report-{}.jsonl", std::process::id()));
        let lines = [
            Event::WindowEnd {
                window: 0,
                threshold: 0.1,
                fired: 7,
                suppressed_by_budget: 0,
                mean_unfixed_pred: 0.01,
                cpu_capacity: 12,
                queue_depth_max: 1,
                quarantined: 0,
                capacity_clamped: false,
                compensated: 0,
                tiers: Vec::new(),
                session: String::new(),
            }
            .to_jsonl(),
            Event::Cache { hit: true, key: "gaussian-s42".into() }.to_jsonl(),
        ]
        .join("\n");
        std::fs::write(&path, lines).unwrap();
        let text = report(path.to_str().unwrap()).unwrap();
        assert!(text.contains("windows: 1"), "{text}");
        assert!(text.contains("cache: 1 hits, 0 misses"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_on_missing_file_is_a_clean_error() {
        let e = report("/nonexistent/rumba.jsonl").unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }

    #[test]
    fn bench_serve_trace_is_reproducible_and_clean() {
        let a = bench_serve(7, 2, 6, None, None).unwrap();
        let b = bench_serve(7, 2, 6, None, None).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"op\":\"open\""));
        assert!(a.contains("\"type\":\"closed\""));
        assert!(!a.contains("\"type\":\"error\""), "trace must be clean:\n{a}");
        // The sharded TCP replay carries the same payloads, prefixed with
        // the observing connection.
        let net = bench_serve(7, 2, 6, None, Some(2)).unwrap();
        let stripped: String = net.lines().fold(String::new(), |mut acc, l| {
            acc.push_str(l.split_once(' ').expect("prefixed line").1);
            acc.push('\n');
            acc
        });
        assert_eq!(stripped, a);
    }
}
