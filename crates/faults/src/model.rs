//! The fault taxonomy: what can go wrong, and where it strikes.

use std::fmt;

/// Fixed-point fractional bits of the modeled NPU datapath. Bit flips are
/// injected on this 16.16 grid (sign + 15 integer + 16 fractional bits),
/// matching the limited-precision datapath `NpuParams::precision_bits`
/// models: a strike flips a latch in the output register, not an abstract
/// IEEE-754 bit (whole-exponent flips would be unrealistically loud).
pub const DATAPATH_FRACTIONAL_BITS: u32 = 16;

/// Width in bits of the modeled output register.
pub const DATAPATH_BITS: u32 = 32;

/// One family of injected faults. Every model is parameterized so a plan
/// can compose several at once; all decisions are pure functions of
/// `(plan seed, model slot, invocation, element)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Transient single-bit upsets on the quantized NPU output datapath:
    /// each output element is struck with probability `rate`, flipping one
    /// uniformly chosen bit of its 16.16 fixed-point representation. The
    /// corrupted value is always finite.
    BitFlip {
        /// Per-element strike probability.
        rate: f64,
    },
    /// Output corruption to a non-finite value (NaN, `+inf`, or `-inf`,
    /// chosen uniformly): models a datapath fault that escapes the number
    /// system entirely — the case the runtime must quarantine.
    NonFinite {
        /// Per-element strike probability.
        rate: f64,
    },
    /// A permanent stuck-at fault: from invocation `start` onward, one
    /// output element position (chosen by the plan seed) always reads
    /// `value` regardless of what the accelerator computed.
    StuckAt {
        /// First affected invocation.
        start: usize,
        /// The value the stuck line reads.
        value: f64,
    },
    /// Input-distribution drift: from invocation `start`, every input
    /// element is shifted by `magnitude × min(1, elapsed / ramp)` — a
    /// saturating ramp that pushes the accelerator (and any input-based
    /// checker) off its training distribution. The CPU's exact
    /// re-execution reads the pristine input from memory, so drift is an
    /// accelerator-side corruption the checkers must catch.
    InputDrift {
        /// First drifting invocation.
        start: usize,
        /// Invocations over which the shift ramps to full magnitude
        /// (zero means the full shift applies immediately).
        ramp: usize,
        /// Full additive shift applied to every input element.
        magnitude: f64,
    },
    /// Checker staleness/misprediction: with probability `rate` per
    /// invocation the checker's score is suppressed to zero — the
    /// detection that should have fired silently does not. This is how
    /// escaped faults are manufactured on purpose.
    CheckerBlind {
        /// Per-invocation suppression probability.
        rate: f64,
    },
    /// Recovery-queue pressure: from invocation `start`, `slots` entries
    /// of the recovery queue behave as permanently occupied (a stuck
    /// consumer), shrinking the effective capacity and forcing earlier
    /// back-pressure.
    QueuePressure {
        /// First affected invocation.
        start: usize,
        /// Phantom-occupied slots.
        slots: usize,
    },
}

impl FaultModel {
    /// The taxonomy tag of this model.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultModel::BitFlip { .. } => FaultKind::BitFlip,
            FaultModel::NonFinite { .. } => FaultKind::NonFinite,
            FaultModel::StuckAt { .. } => FaultKind::StuckAt,
            FaultModel::InputDrift { .. } => FaultKind::InputDrift,
            FaultModel::CheckerBlind { .. } => FaultKind::CheckerBlind,
            FaultModel::QueuePressure { .. } => FaultKind::QueuePressure,
        }
    }

    /// Whether this model corrupts accelerator *outputs*.
    #[must_use]
    pub fn strikes_outputs(&self) -> bool {
        matches!(
            self,
            FaultModel::BitFlip { .. } | FaultModel::NonFinite { .. } | FaultModel::StuckAt { .. }
        )
    }

    /// Whether this model corrupts accelerator *inputs*.
    #[must_use]
    pub fn strikes_inputs(&self) -> bool {
        matches!(self, FaultModel::InputDrift { .. })
    }
}

/// The fault taxonomy tag — the `kind` field of `fault` telemetry events
/// and the row label of the `rumba faults` coverage table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Transient bit flip on the output datapath.
    BitFlip,
    /// Non-finite output corruption.
    NonFinite,
    /// Permanent stuck-at output element.
    StuckAt,
    /// Input-distribution drift.
    InputDrift,
    /// Suppressed checker detection.
    CheckerBlind,
    /// Recovery-queue pressure.
    QueuePressure,
}

impl FaultKind {
    /// Stable snake_case label (telemetry schema; do not repurpose).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit_flip",
            FaultKind::NonFinite => "non_finite",
            FaultKind::StuckAt => "stuck_at",
            FaultKind::InputDrift => "input_drift",
            FaultKind::CheckerBlind => "checker_blind",
            FaultKind::QueuePressure => "queue_pressure",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Flips one bit of `v`'s 16.16 fixed-point datapath representation.
/// `bit` is taken modulo [`DATAPATH_BITS`]. Always returns a finite value.
#[must_use]
pub fn flip_datapath_bit(v: f64, bit: u32) -> f64 {
    let scale = f64::from(1u32 << DATAPATH_FRACTIONAL_BITS);
    let scaled = (v * scale).round().clamp(f64::from(i32::MIN), f64::from(i32::MAX));
    // The clamp above keeps the cast in range.
    #[allow(clippy::cast_possible_truncation)]
    let word = scaled as i32;
    // Bit 31 is the register's sign bit; `1i32 << 31` is exactly that mask.
    let flipped = word ^ (1i32 << (bit % DATAPATH_BITS));
    f64::from(flipped) / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flips_stay_finite_and_move_the_value() {
        for bit in 0..DATAPATH_BITS {
            let flipped = flip_datapath_bit(0.731, bit);
            assert!(flipped.is_finite(), "bit {bit}");
            assert_ne!(flipped, 0.731, "bit {bit} must change the value");
        }
    }

    #[test]
    fn low_bits_are_quiet_high_bits_are_loud() {
        let small = (flip_datapath_bit(1.0, 0) - 1.0).abs();
        let large = (flip_datapath_bit(1.0, 30) - 1.0).abs();
        assert!(small < 1e-4, "LSB flip {small}");
        assert!(large > 1e3, "MSB flip {large}");
    }

    #[test]
    fn sign_bit_flip_negates_the_register() {
        let v = flip_datapath_bit(2.0, 31);
        assert!(v < 0.0, "sign flip of 2.0 gave {v}");
    }

    #[test]
    fn flip_is_an_involution_on_grid_values() {
        // A value already on the 2^-16 grid round-trips: flipping the same
        // bit twice restores it exactly.
        let v = 1234.0 / 65536.0;
        for bit in [0, 7, 19, 31] {
            let twice = flip_datapath_bit(flip_datapath_bit(v, bit), bit);
            assert_eq!(twice, v, "bit {bit}");
        }
    }

    #[test]
    fn kinds_and_targets_are_consistent() {
        let models = [
            FaultModel::BitFlip { rate: 0.1 },
            FaultModel::NonFinite { rate: 0.1 },
            FaultModel::StuckAt { start: 0, value: 0.0 },
            FaultModel::InputDrift { start: 0, ramp: 10, magnitude: 0.5 },
            FaultModel::CheckerBlind { rate: 0.1 },
            FaultModel::QueuePressure { start: 0, slots: 4 },
        ];
        let output_kinds = [FaultKind::BitFlip, FaultKind::NonFinite, FaultKind::StuckAt];
        for m in models {
            assert_eq!(m.strikes_outputs(), output_kinds.contains(&m.kind()), "{:?}", m.kind());
            assert_eq!(m.strikes_inputs(), m.kind() == FaultKind::InputDrift);
            assert!(!m.kind().label().contains(' '));
        }
    }
}
