//! `rumba-faults` — seed-deterministic fault injection for the Rumba
//! runtime.
//!
//! The paper's §6.5 observes that the same checkers that catch large
//! approximation errors also catch *hardware faults* in the accelerator
//! datapath for free. This crate makes that claim testable: a
//! [`FaultPlan`] composes seeded [`FaultModel`]s — transient bit flips on
//! the quantized datapath, non-finite output corruption, stuck-at output
//! lines, input-distribution drift, checker staleness, recovery-queue
//! pressure — and injects them into the accelerator and runtime hooks
//! (`Npu::invoke_batch`, `RumbaSystem::run`/`process`, the event
//! simulator).
//!
//! # Determinism contract
//!
//! Every decision is a **pure function** of `(plan seed, model slot,
//! invocation index, element index)` — no shared RNG stream, no
//! interior mutability. Two consequences:
//!
//! - Injected runs are bit-reproducible at any thread count (the same
//!   contract `rumba-parallel` keeps for chunked work): corrupting row
//!   500 never depends on the order rows 0..499 were visited.
//! - Any observer can *replay* the plan's decisions without touching
//!   data — [`FaultPlan::output_fault_events`] recounts exactly what
//!   [`FaultPlan::corrupt_output`] injected, which is how the runtime
//!   attributes detections to injections without plumbing state through
//!   the parallel batch path.
//!
//! The crate is std-only and dependency-free; telemetry emission stays
//! with the (serial) call sites in `rumba-core` so event order is
//! deterministic too.
//!
//! # Examples
//!
//! ```
//! use rumba_faults::{FaultModel, FaultPlan};
//!
//! let plan = FaultPlan::new(0xfa17).with(FaultModel::NonFinite { rate: 0.5 });
//! let mut row = [1.0, 2.0, 3.0, 4.0];
//! let injected = plan.corrupt_output(7, &mut row);
//! // Bit-reproducible: the same (seed, invocation) corrupts identically.
//! let mut again = [1.0, 2.0, 3.0, 4.0];
//! assert_eq!(plan.corrupt_output(7, &mut again), injected);
//! assert_eq!(row.map(f64::to_bits), again.map(f64::to_bits));
//! ```

mod model;
mod rng;

pub use model::{
    flip_datapath_bit, FaultKind, FaultModel, DATAPATH_BITS, DATAPATH_FRACTIONAL_BITS,
};
pub use rng::{decision, splitmix64, unit};

/// One fault the plan injected (or would inject) at a specific site;
/// the runtime turns these into `fault` telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Which model struck.
    pub kind: FaultKind,
    /// Output-element index the strike landed on (0 for whole-invocation
    /// faults such as checker blinding).
    pub element: usize,
}

/// Cumulative injection/degradation accounting for one run. The runtime
/// fills this while replaying its serial decision loop and reports it in
/// `RunOutcome`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Output elements corrupted (bit flips + non-finite + stuck-at).
    pub injected_outputs: u64,
    /// Invocations whose inputs were drifted.
    pub drifted_inputs: u64,
    /// Invocations whose checker score was suppressed.
    pub checker_blinded: u64,
    /// Invocations quarantined for non-finite accelerator output.
    pub quarantined: u64,
    /// Faulted invocations that fired the checker (detected).
    pub detected: u64,
    /// Faulted invocations that neither fired nor were quarantined.
    pub escaped: u64,
    /// Watchdog recalibrations triggered.
    pub recalibrations: u64,
    /// Watchdog full-CPU fallbacks triggered.
    pub fallbacks: u64,
}

impl FaultStats {
    /// Whether any fault was injected or any degradation action taken.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// A composition of seeded fault models, attachable to the accelerator
/// (`Npu::with_fault_plan`) and the runtime (`RumbaSystem::set_fault_plan`).
///
/// An empty plan injects nothing; hooks check [`FaultPlan::is_empty`] (or
/// hold `Option<FaultPlan>`) so the fault-off path costs nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    models: Vec<FaultModel>,
}

impl FaultPlan {
    /// An empty plan with the given seed; add models with [`FaultPlan::with`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, models: Vec::new() }
    }

    /// Adds one fault model (builder style). Models occupy consecutive
    /// slots; the slot index is mixed into every decision, so two
    /// identical models in one plan strike independently.
    #[must_use]
    pub fn with(mut self, model: FaultModel) -> Self {
        self.models.push(model);
        self
    }

    /// Parses a compact fault-spec string into a plan — the wire format of
    /// the serving protocol's `"faults"` field and the bench drivers.
    ///
    /// The spec is a comma-separated list of `kind=params` entries, where
    /// multi-value params are `:`-separated:
    ///
    /// | entry | model |
    /// |---|---|
    /// | `bit_flip=RATE` | [`FaultModel::BitFlip`] |
    /// | `non_finite=RATE` | [`FaultModel::NonFinite`] |
    /// | `stuck_at=START:VALUE` | [`FaultModel::StuckAt`] |
    /// | `input_drift=START:RAMP:MAGNITUDE` | [`FaultModel::InputDrift`] |
    /// | `checker_blind=RATE` | [`FaultModel::CheckerBlind`] |
    /// | `queue_pressure=START:SLOTS` | [`FaultModel::QueuePressure`] |
    ///
    /// An empty (or all-whitespace) spec parses to an empty plan, which
    /// every attachment point normalizes to "no plan".
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed entry.
    pub fn parse(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = Self::new(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, params) =
                entry.split_once('=').ok_or_else(|| format!("'{entry}': expected kind=params"))?;
            let parts: Vec<&str> = params.split(':').map(str::trim).collect();
            let arity = |n: usize| {
                if parts.len() == n {
                    Ok(())
                } else {
                    Err(format!("'{entry}': expected {n} ':'-separated parameter(s)"))
                }
            };
            let rate = |s: &str| -> Result<f64, String> {
                let v: f64 = s.parse().map_err(|e| format!("'{entry}': bad rate '{s}' ({e})"))?;
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(format!("'{entry}': rate {v} outside [0, 1]"))
                }
            };
            let num = |s: &str| -> Result<f64, String> {
                s.parse().map_err(|e| format!("'{entry}': bad number '{s}' ({e})"))
            };
            let index = |s: &str| -> Result<usize, String> {
                s.parse().map_err(|e| format!("'{entry}': bad index '{s}' ({e})"))
            };
            let model = match kind.trim() {
                "bit_flip" => {
                    arity(1)?;
                    FaultModel::BitFlip { rate: rate(parts[0])? }
                }
                "non_finite" => {
                    arity(1)?;
                    FaultModel::NonFinite { rate: rate(parts[0])? }
                }
                "stuck_at" => {
                    arity(2)?;
                    FaultModel::StuckAt { start: index(parts[0])?, value: num(parts[1])? }
                }
                "input_drift" => {
                    arity(3)?;
                    FaultModel::InputDrift {
                        start: index(parts[0])?,
                        ramp: index(parts[1])?,
                        magnitude: num(parts[2])?,
                    }
                }
                "checker_blind" => {
                    arity(1)?;
                    FaultModel::CheckerBlind { rate: rate(parts[0])? }
                }
                "queue_pressure" => {
                    arity(2)?;
                    FaultModel::QueuePressure { start: index(parts[0])?, slots: index(parts[1])? }
                }
                other => return Err(format!("unknown fault kind '{other}'")),
            };
            plan = plan.with(model);
        }
        Ok(plan)
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The composed models, in slot order.
    #[must_use]
    pub fn models(&self) -> &[FaultModel] {
        &self.models
    }

    /// Whether the plan has no models at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Whether any model corrupts accelerator outputs.
    #[must_use]
    pub fn has_output_faults(&self) -> bool {
        self.models.iter().any(FaultModel::strikes_outputs)
    }

    /// Whether any model corrupts accelerator inputs.
    #[must_use]
    pub fn has_input_faults(&self) -> bool {
        self.models.iter().any(FaultModel::strikes_inputs)
    }

    /// The output element a [`FaultModel::StuckAt`] slot pins, for a given
    /// output width (chosen by the plan seed, stable across invocations).
    fn stuck_element(&self, slot: usize, out_dim: usize) -> usize {
        (decision(self.seed, slot as u64, u64::MAX, u64::MAX) % out_dim.max(1) as u64) as usize
    }

    /// Applies every output-side model to one invocation's output row,
    /// in slot order. Returns the number of corrupted elements.
    pub fn corrupt_output(&self, invocation: usize, out: &mut [f64]) -> usize {
        let mut injected = 0usize;
        for (slot, model) in self.models.iter().enumerate() {
            match *model {
                FaultModel::BitFlip { rate } => {
                    for (e, v) in out.iter_mut().enumerate() {
                        let h = decision(self.seed, slot as u64, invocation as u64, e as u64);
                        if unit(h) < rate {
                            *v = flip_datapath_bit(*v, (splitmix64(h) % 64) as u32);
                            injected += 1;
                        }
                    }
                }
                FaultModel::NonFinite { rate } => {
                    for (e, v) in out.iter_mut().enumerate() {
                        let h = decision(self.seed, slot as u64, invocation as u64, e as u64);
                        if unit(h) < rate {
                            *v = match splitmix64(h) % 3 {
                                0 => f64::NAN,
                                1 => f64::INFINITY,
                                _ => f64::NEG_INFINITY,
                            };
                            injected += 1;
                        }
                    }
                }
                FaultModel::StuckAt { start, value } if invocation >= start && !out.is_empty() => {
                    out[self.stuck_element(slot, out.len())] = value;
                    injected += 1;
                }
                _ => {}
            }
        }
        injected
    }

    /// Replays [`FaultPlan::corrupt_output`]'s decisions without data,
    /// appending one [`InjectedFault`] per *newsworthy* strike to `log`
    /// (cleared first): every rate-based strike, but a stuck-at line only
    /// on its first affected invocation — a persistent fault is one event,
    /// not one per invocation. Returns the total corrupted-element count
    /// for this invocation (stuck-at counted every invocation).
    pub fn output_fault_events(
        &self,
        invocation: usize,
        out_dim: usize,
        log: &mut Vec<InjectedFault>,
    ) -> usize {
        log.clear();
        let mut injected = 0usize;
        for (slot, model) in self.models.iter().enumerate() {
            match *model {
                FaultModel::BitFlip { rate } | FaultModel::NonFinite { rate } => {
                    for e in 0..out_dim {
                        let h = decision(self.seed, slot as u64, invocation as u64, e as u64);
                        if unit(h) < rate {
                            log.push(InjectedFault { kind: model.kind(), element: e });
                            injected += 1;
                        }
                    }
                }
                FaultModel::StuckAt { start, .. } if invocation >= start && out_dim > 0 => {
                    injected += 1;
                    if invocation == start {
                        log.push(InjectedFault {
                            kind: FaultKind::StuckAt,
                            element: self.stuck_element(slot, out_dim),
                        });
                    }
                }
                _ => {}
            }
        }
        injected
    }

    /// Applies input-drift models to one invocation's input row. Returns
    /// whether the row was modified.
    pub fn drift_input(&self, invocation: usize, input: &mut [f64]) -> bool {
        let mut drifted = false;
        for model in &self.models {
            if let FaultModel::InputDrift { start, ramp, magnitude } = *model {
                if invocation >= start {
                    let elapsed = (invocation - start + 1) as f64;
                    let shift = magnitude * (elapsed / ramp.max(1) as f64).min(1.0);
                    for v in input.iter_mut() {
                        *v += shift;
                    }
                    drifted = true;
                }
            }
        }
        drifted
    }

    /// Whether any checker-staleness model suppresses the checker's score
    /// for this invocation.
    #[must_use]
    pub fn blind_checker(&self, invocation: usize) -> bool {
        self.models.iter().enumerate().any(|(slot, model)| match *model {
            FaultModel::CheckerBlind { rate } => {
                unit(decision(self.seed, slot as u64, invocation as u64, 0)) < rate
            }
            _ => false,
        })
    }

    /// Phantom recovery-queue occupancy at this invocation (summed over
    /// queue-pressure models).
    #[must_use]
    pub fn queue_pressure(&self, invocation: usize) -> usize {
        self.models
            .iter()
            .map(|model| match *model {
                FaultModel::QueuePressure { start, slots } if invocation >= start => slots,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_models() -> Vec<FaultModel> {
        vec![
            FaultModel::BitFlip { rate: 0.05 },
            FaultModel::NonFinite { rate: 0.05 },
            FaultModel::StuckAt { start: 10, value: -1.0 },
            FaultModel::InputDrift { start: 20, ramp: 8, magnitude: 0.25 },
            FaultModel::CheckerBlind { rate: 0.1 },
            FaultModel::QueuePressure { start: 5, slots: 3 },
        ]
    }

    #[test]
    fn parses_the_full_spec_grammar() {
        let plan = FaultPlan::parse(
            9,
            "bit_flip=0.05, non_finite=0.05, stuck_at=10:-1.0, \
             input_drift=20:8:0.25, checker_blind=0.1, queue_pressure=5:3",
        )
        .unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.models(), all_models().as_slice());
    }

    #[test]
    fn empty_spec_is_an_empty_plan() {
        for spec in ["", "   ", ",", " , "] {
            let plan = FaultPlan::parse(1, spec).unwrap();
            assert!(plan.is_empty(), "{spec:?}");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "martian=0.1",
            "bit_flip",
            "bit_flip=1.5",
            "bit_flip=-0.1",
            "bit_flip=x",
            "stuck_at=10",
            "stuck_at=10:1:2",
            "input_drift=1:2",
            "queue_pressure=1:-3",
        ] {
            assert!(FaultPlan::parse(0, bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_plan_touches_nothing() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        let mut out = [0.5, -0.5];
        assert_eq!(plan.corrupt_output(3, &mut out), 0);
        assert_eq!(out, [0.5, -0.5]);
        let mut input = [1.0];
        assert!(!plan.drift_input(3, &mut input));
        assert!(!plan.blind_checker(3));
        assert_eq!(plan.queue_pressure(3), 0);
    }

    #[test]
    fn stuck_at_pins_one_element_from_its_start() {
        let plan = FaultPlan::new(9).with(FaultModel::StuckAt { start: 4, value: 7.5 });
        let mut before = [0.0, 1.0, 2.0];
        assert_eq!(plan.corrupt_output(3, &mut before), 0);
        let mut a = [0.0, 1.0, 2.0];
        let mut b = [9.0, 8.0, 7.0];
        assert_eq!(plan.corrupt_output(4, &mut a), 1);
        assert_eq!(plan.corrupt_output(400, &mut b), 1);
        let pos_a = a.iter().position(|&v| v == 7.5).unwrap();
        let pos_b = b.iter().position(|&v| v == 7.5).unwrap();
        assert_eq!(pos_a, pos_b, "stuck element is stable across invocations");
    }

    #[test]
    fn drift_ramps_and_saturates() {
        let plan =
            FaultPlan::new(2).with(FaultModel::InputDrift { start: 10, ramp: 10, magnitude: 1.0 });
        let shift_at = |inv: usize| {
            let mut x = [0.0];
            plan.drift_input(inv, &mut x);
            x[0]
        };
        assert_eq!(shift_at(9), 0.0, "before start");
        let early = shift_at(10);
        let mid = shift_at(14);
        let full = shift_at(19);
        assert!(early > 0.0 && early < mid && mid < full, "{early} {mid} {full}");
        assert_eq!(full, 1.0);
        assert_eq!(shift_at(500), 1.0, "saturated");
    }

    #[test]
    fn event_replay_matches_injection() {
        let plan = FaultPlan::new(77)
            .with(FaultModel::NonFinite { rate: 0.2 })
            .with(FaultModel::BitFlip { rate: 0.2 });
        let mut log = Vec::new();
        for inv in 0..200 {
            let mut out = [1.0, 2.0, 3.0];
            let injected = plan.corrupt_output(inv, &mut out);
            let replayed = plan.output_fault_events(inv, out.len(), &mut log);
            assert_eq!(injected, replayed, "invocation {inv}");
            assert_eq!(log.len(), injected, "rate-based strikes all log");
            // Every logged non-finite strike corresponds to a corrupted
            // slot — unless a later-slot bit flip re-struck the same
            // element (the fixed-point datapath quantizes NaN back to a
            // finite word).
            for f in &log {
                let restruck =
                    log.iter().any(|g| g.kind == FaultKind::BitFlip && g.element == f.element);
                if f.kind == FaultKind::NonFinite && !restruck {
                    assert!(!out[f.element].is_finite(), "invocation {inv} element {}", f.element);
                }
            }
        }
    }

    #[test]
    fn stuck_at_logs_only_once() {
        let plan = FaultPlan::new(4).with(FaultModel::StuckAt { start: 3, value: 0.0 });
        let mut log = Vec::new();
        assert_eq!(plan.output_fault_events(2, 2, &mut log), 0);
        assert!(log.is_empty());
        assert_eq!(plan.output_fault_events(3, 2, &mut log), 1);
        assert_eq!(log.len(), 1, "first affected invocation logs");
        assert_eq!(plan.output_fault_events(4, 2, &mut log), 1);
        assert!(log.is_empty(), "persistent fault is one event, not one per invocation");
    }

    #[test]
    fn queue_pressure_and_blinding_activate() {
        let plan = FaultPlan::new(3)
            .with(FaultModel::QueuePressure { start: 5, slots: 3 })
            .with(FaultModel::CheckerBlind { rate: 0.5 });
        assert_eq!(plan.queue_pressure(4), 0);
        assert_eq!(plan.queue_pressure(5), 3);
        let blinded = (0..1000).filter(|&i| plan.blind_checker(i)).count();
        assert!((350..650).contains(&blinded), "blinded {blinded}");
    }

    #[test]
    fn composed_plan_reports_its_surfaces() {
        let mut plan = FaultPlan::new(0);
        for m in all_models() {
            plan = plan.with(m);
        }
        assert!(plan.has_output_faults() && plan.has_input_faults());
        assert_eq!(plan.models().len(), 6);
    }

    proptest! {
        #[test]
        fn decisions_are_order_and_history_independent(
            seed in 0u64..1_000_000,
            inv in 0usize..10_000,
            dim in 1usize..9,
        ) {
            let plan = FaultPlan::new(seed)
                .with(FaultModel::BitFlip { rate: 0.3 })
                .with(FaultModel::NonFinite { rate: 0.3 })
                .with(FaultModel::StuckAt { start: 100, value: 0.25 });
            // Visiting rows in any order (or skipping all others) yields
            // the same corruption for row `inv`.
            let mut direct: Vec<f64> = (0..dim).map(|e| e as f64 * 0.125).collect();
            plan.corrupt_output(inv, &mut direct);
            let mut after_history: Vec<f64> = (0..dim).map(|e| e as f64 * 0.125).collect();
            for other in (0..50).rev() {
                let mut scratch = vec![0.5; dim];
                plan.corrupt_output(other, &mut scratch);
            }
            plan.corrupt_output(inv, &mut after_history);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&direct), bits(&after_history));
        }

        #[test]
        fn bit_flip_corruption_is_always_finite(
            seed in 0u64..1_000_000,
            inv in 0usize..10_000,
        ) {
            let plan = FaultPlan::new(seed).with(FaultModel::BitFlip { rate: 1.0 });
            let mut out = [0.123, -4.56, 1e4, 0.0];
            let injected = plan.corrupt_output(inv, &mut out);
            prop_assert_eq!(injected, out.len());
            prop_assert!(out.iter().all(|v| v.is_finite()));
        }
    }
}
