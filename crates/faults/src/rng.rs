//! Stateless, order-independent randomness for fault decisions.
//!
//! Every fault decision hashes `(seed, model slot, invocation, element)`
//! through a SplitMix64 finalizer instead of advancing a shared RNG
//! stream. Corrupting row 500 therefore never depends on whether rows
//! 0..499 were visited first (or on which thread visited them), which is
//! what makes an injected run bit-reproducible at any thread count — the
//! same contract `rumba-parallel` keeps for chunked work.

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[must_use]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes one fault-decision coordinate tuple to a 64-bit word.
#[must_use]
pub const fn decision(seed: u64, slot: u64, invocation: u64, element: u64) -> u64 {
    let mut z = splitmix64(seed ^ 0x5bf0_3635_ceca_c5a3);
    z = splitmix64(z ^ slot.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = splitmix64(z ^ invocation.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    splitmix64(z ^ element.wrapping_mul(0x1656_67b1_9e37_79f9))
}

/// Maps a hash word to a uniform draw in `[0, 1)` (53 mantissa bits).
#[must_use]
pub fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions() {
        assert_eq!(decision(1, 2, 3, 4), decision(1, 2, 3, 4));
        // Any coordinate change moves the hash.
        let base = decision(1, 2, 3, 4);
        assert_ne!(base, decision(2, 2, 3, 4));
        assert_ne!(base, decision(1, 3, 3, 4));
        assert_ne!(base, decision(1, 2, 4, 4));
        assert_ne!(base, decision(1, 2, 3, 5));
    }

    #[test]
    fn unit_is_uniform_enough_for_rates() {
        // 10k decision draws land within a loose band around a 10% rate —
        // enough to trust rate-based models without a statistics crate.
        let hits = (0..10_000).filter(|&i| unit(decision(7, 0, i, 0)) < 0.1).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
        // And all draws live in [0, 1).
        for i in 0..1000 {
            let u = unit(decision(42, 1, i, i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
