//! Whole-application integration: the managed accelerator slotted into the
//! full pipelines (edge mapping, Lloyd clustering, block transcoding) via
//! the streaming API, compared against exact and unchecked-approximate
//! runs.

use rumba::accel::CheckerUnit;
use rumba::apps::image::Image;
use rumba::apps::pipelines::{cluster_pixels, edge_map, rgb_pixels_of, transcode_image};
use rumba::apps::{kernel_by_name, Kernel};
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{train_app, OfflineConfig, TrainedApp};
use rumba::core::tuner::{Tuner, TuningMode};

fn trained(name: &str) -> (Box<dyn Kernel>, TrainedApp) {
    let kernel = kernel_by_name(name).expect("known benchmark");
    let app = train_app(kernel.as_ref(), &OfflineConfig { seed: 42, ..OfflineConfig::default() })
        .expect("training succeeds");
    (kernel, app)
}

fn managed_system(app: &TrainedApp, toq: f64) -> RumbaSystem {
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree.clone())),
        Tuner::new(TuningMode::TargetQuality { toq }, 0.05).expect("valid tuner"),
        RuntimeConfig::default(),
    )
    .expect("valid config");
    system.begin_stream();
    system
}

fn mean_abs_diff(a: &Image, b: &Image) -> f64 {
    a.pixels().iter().zip(b.pixels()).map(|(x, y)| (x - y).abs()).sum::<f64>()
        / a.pixels().len() as f64
}

#[test]
fn managed_edge_map_beats_unchecked() {
    let (kernel, app) = trained("sobel");
    let image = Image::synthetic_with_texture(96, 96, 0xface, 0.5);

    let exact = edge_map(&image, |w, out| kernel.compute(w, out));
    let unchecked = edge_map(&image, |w, out| {
        let r = app.rumba_npu.invoke(w).expect("width matches");
        out[0] = r.outputs[0];
    });
    let mut system = managed_system(&app, 0.92);
    let managed = edge_map(&image, |w, out| {
        system.process(kernel.as_ref(), w, out).expect("process succeeds");
    });

    let err_unchecked = mean_abs_diff(&exact, &unchecked);
    let err_managed = mean_abs_diff(&exact, &managed);
    assert!(err_managed < err_unchecked, "managed {err_managed} vs unchecked {err_unchecked}");
    assert!(system.stream_fixes() > 0, "recovery must engage");
    assert!(system.stream_fixes() < system.stream_invocations(), "but not fix everything");
}

#[test]
fn managed_clustering_assignment_pass_tracks_exact() {
    // One Lloyd assignment pass over identical (deterministic) initial
    // centroids: all three evaluators see the same pixel/centroid pairs, so
    // cluster labels are directly comparable. (Full multi-iteration runs
    // diverge through feedback — different centroid trajectories — and are
    // not label-comparable; the distance *stream* quality is what Rumba's
    // contract covers.)
    let (kernel, app) = trained("kmeans");
    let image = Image::synthetic(48, 48, 0xc0de);
    let pixels = rgb_pixels_of(&image);
    let k = 5;

    let exact = cluster_pixels(&pixels, k, 1, |x, out| kernel.compute(x, out));
    let unchecked = cluster_pixels(&pixels, k, 1, |x, out| {
        out[0] = app.rumba_npu.invoke(x).expect("width matches").outputs[0];
    });
    let mut system = managed_system(&app, 0.98);
    let managed = cluster_pixels(&pixels, k, 1, |x, out| {
        system.process(kernel.as_ref(), x, out).expect("process succeeds");
    });
    // Cranking the quality knob to its extreme must recover (almost) the
    // exact assignment pass — Challenge IV's tunability, end to end.
    let mut strict = managed_system(&app, 0.9999);
    let managed_strict = cluster_pixels(&pixels, k, 1, |x, out| {
        strict.process(kernel.as_ref(), x, out).expect("process succeeds");
    });

    let agreement = |c: &rumba::apps::pipelines::Clustering| {
        exact.assignments.iter().zip(&c.assignments).filter(|(a, b)| a == b).count() as f64
            / pixels.len() as f64
    };
    let ag_unchecked = agreement(&unchecked);
    let ag_managed = agreement(&managed);
    let ag_strict = agreement(&managed_strict);
    // Argmins between near-tied centroids flip on tiny distance errors (the
    // pixel population lies on a 1-D color curve), so absolute agreement is
    // modest — but it must be monotone in the quality knob.
    assert!(ag_managed >= ag_unchecked, "managed {ag_managed} vs unchecked {ag_unchecked}");
    assert!(ag_strict >= ag_managed, "strict {ag_strict} vs managed {ag_managed}");
    assert!(ag_unchecked < 1.0, "the approximation must actually flip some assignments");
    assert!(ag_strict > 0.9, "the extreme setting must recover the exact pass: {ag_strict}");
}

#[test]
fn managed_transcode_is_closer_to_the_real_codec() {
    let (kernel, app) = trained("jpeg");
    let image = Image::synthetic_with_texture(64, 64, 0xdeed, 0.6);

    let exact = transcode_image(&image, |b, out| kernel.compute(b, out));
    let unchecked = transcode_image(&image, |b, out| {
        out.copy_from_slice(&app.rumba_npu.invoke(b).expect("width matches").outputs);
    });
    let mut system = managed_system(&app, 0.95);
    let managed = transcode_image(&image, |b, out| {
        system.process(kernel.as_ref(), b, out).expect("process succeeds");
    });

    let err_unchecked = mean_abs_diff(&exact, &unchecked);
    let err_managed = mean_abs_diff(&exact, &managed);
    assert!(err_managed < err_unchecked, "managed {err_managed} vs unchecked {err_unchecked}");
}

#[test]
fn stream_counters_reset_between_streams() {
    let (kernel, app) = trained("gaussian");
    let mut system = managed_system(&app, 0.95);
    let mut out = [0.0];
    for i in 0..100 {
        let x = [-16.0 + i as f64 * 0.32];
        system.process(kernel.as_ref(), &x, &mut out).expect("process succeeds");
    }
    assert_eq!(system.stream_invocations(), 100);
    system.begin_stream();
    assert_eq!(system.stream_invocations(), 0);
    assert_eq!(system.stream_fixes(), 0);
}
