//! End-to-end integration: offline training → online detection/recovery →
//! merged output, across crates, asserting the paper-shape outcomes.

use rumba::accel::CheckerUnit;
use rumba::apps::{kernel_by_name, Split};
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{invocation_errors, train_app, OfflineConfig};
use rumba::core::tuner::{calibrate_threshold, Tuner, TuningMode};
use rumba::predict::ErrorEstimator;

fn managed_run(
    name: &str,
    mode: TuningMode,
) -> (f64, f64, rumba::core::runtime::RunOutcome, usize) {
    let kernel = kernel_by_name(name).expect("known benchmark");
    let cfg = OfflineConfig { seed: 42, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
    let train = kernel.generate(Split::Train, 42);
    let mut tree = app.tree.clone();
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| tree.estimate(train.input(i), &[])).collect();
    let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.10);

    let test = kernel.generate(Split::Test, 42);
    let unchecked =
        invocation_errors(kernel.as_ref(), &app.rumba_npu, &test).expect("replay succeeds");
    let unchecked_error = unchecked.iter().sum::<f64>() / unchecked.len() as f64;

    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree)),
        Tuner::new(mode, threshold).expect("valid tuner"),
        RuntimeConfig::default(),
    )
    .expect("valid config");
    let outcome = system.run(kernel.as_ref(), &test).expect("run succeeds");
    (unchecked_error, outcome.output_error, outcome, test.len())
}

#[test]
fn rumba_reduces_error_on_inversek2j() {
    let (unchecked, managed, outcome, n) =
        managed_run("inversek2j", TuningMode::TargetQuality { toq: 0.90 });
    assert!(managed <= 0.105, "TOQ missed: {managed}");
    assert!(managed < unchecked, "managed {managed} vs unchecked {unchecked}");
    assert!(outcome.fixes > 0 && outcome.fixes < n, "selective, not all-or-nothing");
}

#[test]
fn rumba_reduces_error_on_fft() {
    let (unchecked, managed, _, _) = managed_run("fft", TuningMode::TargetQuality { toq: 0.90 });
    assert!(managed <= 0.105, "TOQ missed: {managed}");
    assert!(managed < unchecked * 0.75, "expected a clear reduction");
}

#[test]
fn quality_mode_keeps_accelerator_speed_on_gaussian() {
    let (_, managed, outcome, n) = managed_run("gaussian", TuningMode::BestQuality);
    // Quality mode caps recovery at the CPU's overlap capacity: the fix
    // rate stays at or below ~1/kernel-gain per window, give or take the
    // adaptation transient.
    let kernel = kernel_by_name("gaussian").unwrap();
    let cfg = OfflineConfig { seed: 42, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg).unwrap();
    let cap = app.rumba_npu.cycles_per_invocation() as f64 / kernel.cpu_cycles();
    let fix_rate = outcome.fixes as f64 / n as f64;
    assert!(fix_rate <= cap * 1.3 + 0.02, "fix rate {fix_rate} vs cap {cap}");
    assert!(managed.is_finite());
}

#[test]
fn energy_mode_bounds_reexecution() {
    let kernel = kernel_by_name("blackscholes").expect("known benchmark");
    let cfg = OfflineConfig { seed: 42, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
    let test = kernel.generate(Split::Test, 42);
    let budget = 10usize;
    let window = 250usize;
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.linear)),
        Tuner::new(TuningMode::EnergyBudget { budget }, 1e-4).expect("valid tuner"),
        RuntimeConfig { window, ..RuntimeConfig::default() },
    )
    .expect("valid config");
    let outcome = system.run(kernel.as_ref(), &test).expect("run succeeds");
    let windows = test.len().div_ceil(window);
    assert!(outcome.fixes <= budget * windows, "budget violated: {}", outcome.fixes);
}

#[test]
fn merged_stream_is_exact_exactly_where_fired() {
    let (_, _, outcome, _) = managed_run("gaussian", TuningMode::TargetQuality { toq: 0.95 });
    let kernel = kernel_by_name("gaussian").unwrap();
    let test = kernel.generate(Split::Test, 42);
    let out_dim = kernel.output_dim();
    let cfg = OfflineConfig { seed: 42, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg).unwrap();
    for (i, &f) in outcome.fired.iter().enumerate() {
        let merged = &outcome.merged_outputs[i * out_dim..(i + 1) * out_dim];
        if f {
            assert_eq!(merged, test.target(i), "fired iteration {i} must be exact");
        } else {
            let approx = app.rumba_npu.invoke(test.input(i)).unwrap().outputs;
            assert_eq!(merged, &approx[..], "unfired iteration {i} must be approximate");
        }
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || managed_run("fft", TuningMode::TargetQuality { toq: 0.92 });
    let (u1, m1, o1, _) = run();
    let (u2, m2, o2, _) = run();
    assert_eq!(u1, u2);
    assert_eq!(m1, m2);
    assert_eq!(o1.merged_outputs, o2.merged_outputs);
    assert_eq!(o1.threshold_history, o2.threshold_history);
}
