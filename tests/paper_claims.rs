//! Cross-crate assertions of the paper's qualitative claims on fast-to-
//! train benchmarks (the full Table-1 sweep lives in the `rumba-bench`
//! harness binaries; see EXPERIMENTS.md).

use rumba::apps::kernel_by_name;
use rumba::core::analysis::{false_positive_fraction, relative_coverage};
use rumba::core::context::AppContext;
use rumba::core::scheme::SchemeKind;
use rumba::energy::{EnergyParams, SystemModel};

fn ctx(name: &str) -> AppContext {
    let kernel = kernel_by_name(name).expect("known benchmark");
    AppContext::build(kernel.as_ref(), 42).expect("training succeeds")
}

fn fixes_at(ctx: &AppContext, kind: SchemeKind) -> usize {
    ctx.fixes_for_target_error(kind, 0.10).unwrap_or_else(|| ctx.len())
}

#[test]
fn checkers_beat_blind_baselines_at_the_operating_point() {
    // Figure 12's ordering: Ideal <= tree <= Random on the fixes needed
    // for 90% quality.
    let ctx = ctx("inversek2j");
    let ideal = fixes_at(&ctx, SchemeKind::Ideal);
    let tree = fixes_at(&ctx, SchemeKind::TreeErrors);
    let random = fixes_at(&ctx, SchemeKind::Random);
    let uniform = fixes_at(&ctx, SchemeKind::Uniform);
    assert!(ideal <= tree, "ideal {ideal} > tree {tree}");
    assert!(tree < random, "tree {tree} >= random {random}");
    assert!(tree < uniform, "tree {tree} >= uniform {uniform}");
    // And the checker is close to the oracle (paper: within a few percent
    // of the elements).
    assert!(
        (tree - ideal) as f64 / ctx.len() as f64 <= 0.05,
        "tree needs {} extra fixes over ideal",
        tree - ideal
    );
}

#[test]
fn ideal_has_zero_false_positives_and_full_coverage() {
    // Figures 11 and 13 by construction.
    let ctx = ctx("fft");
    let k_ideal = fixes_at(&ctx, SchemeKind::Ideal);
    let fp =
        false_positive_fraction(ctx.scores(SchemeKind::Ideal), ctx.true_errors(), k_ideal, k_ideal);
    assert_eq!(fp, 0.0);
    let cov =
        relative_coverage(ctx.scores(SchemeKind::Ideal), ctx.true_errors(), k_ideal, k_ideal, 0.20);
    assert!((cov - 100.0).abs() < 1e-9);
}

#[test]
fn tree_checker_has_fewer_false_positives_than_random() {
    let ctx = ctx("blackscholes");
    let k_ideal = fixes_at(&ctx, SchemeKind::Ideal);
    let fp_of = |kind: SchemeKind| {
        false_positive_fraction(ctx.scores(kind), ctx.true_errors(), fixes_at(&ctx, kind), k_ideal)
    };
    assert!(fp_of(SchemeKind::TreeErrors) < 0.5 * fp_of(SchemeKind::Random));
}

#[test]
fn rumba_trades_some_energy_for_quality_but_keeps_speed() {
    // The abstract's headline: quality management costs part of the energy
    // saving, not the speedup.
    let ctx = ctx("inversek2j");
    let model = SystemModel::new(EnergyParams::default());
    let workload = ctx.workload();
    let baseline = model.cpu_baseline(&workload);
    let npu = model.accelerated(&workload, &ctx.unchecked_npu_activity());
    let fixes = fixes_at(&ctx, SchemeKind::TreeErrors);
    let rumba = model.accelerated(&workload, &ctx.scheme_activity(SchemeKind::TreeErrors, fixes));

    let npu_energy = npu.energy_reduction_vs(&baseline);
    let rumba_energy = rumba.energy_reduction_vs(&baseline);
    assert!(rumba_energy < npu_energy, "recovery must cost energy");
    assert!(rumba_energy > 0.5 * npu_energy, "but not cripple the savings");

    let npu_speed = npu.speedup_vs(&baseline);
    let rumba_speed = rumba.speedup_vs(&baseline);
    assert!(rumba_speed > 0.85 * npu_speed, "{rumba_speed} vs {npu_speed}");
}

#[test]
fn checker_latency_always_hides_behind_the_accelerator() {
    // Figure 17 as an invariant, on two differently shaped benchmarks.
    for name in ["fft", "kmeans"] {
        let ctx = ctx(name);
        let npu = ctx.trained().rumba_npu.cycles_per_invocation();
        for kind in [SchemeKind::LinearErrors, SchemeKind::TreeErrors, SchemeKind::Ema] {
            let c = ctx.scores(kind).checker_cost();
            let cycles = (c.macs + c.comparisons + 1) as u64;
            assert!(cycles < npu, "{name}/{kind}: checker {cycles} vs npu {npu}");
        }
    }
}

#[test]
fn error_reduction_headline_on_the_fast_subset() {
    // Abstract: "2.1x reduction in output error" vs the unchecked
    // accelerator. Check that fixing the tree scheme's TOQ set at least
    // halves the error on a couple of benchmarks.
    for name in ["inversek2j", "fft"] {
        let ctx = ctx(name);
        let unchecked = ctx.unchecked_output_error();
        let fixes = fixes_at(&ctx, SchemeKind::TreeErrors);
        let managed = ctx.error_after_fixing(SchemeKind::TreeErrors, fixes);
        assert!(managed <= unchecked / 1.5, "{name}: {managed} vs unchecked {unchecked}");
    }
}
