//! The paper's motivating application, end to end: build a photo mosaic
//! with the tile-matching distance kernel running on the approximate
//! accelerator, managed by Rumba.
//!
//! Figure 3 showed why mosaic needs online quality management (its error is
//! wildly input-dependent); this example closes the loop by running the
//! whole application under it.
//!
//! ```text
//! cargo run --release --example mosaic_builder
//! ```

use rumba::accel::CheckerUnit;
use rumba::apps::image::Image;
use rumba::apps::kernel_by_name;
use rumba::apps::mosaic::{build_mosaic, TileGallery};
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{train_app, OfflineConfig};
use rumba::core::tuner::{Tuner, TuningMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The distance kernel is kmeans' pixel↔centroid distance — mosaic's
    // tile matcher is the same 6-in/1-out computation.
    let kernel = kernel_by_name("kmeans").expect("built-in benchmark");
    let app = train_app(kernel.as_ref(), &OfflineConfig { seed: 42, ..OfflineConfig::default() })?;

    let target = Image::synthetic(192, 128, 0x0031c);
    let tile_size = 16;
    let gallery = TileGallery::generate(96, tile_size, 77);
    println!(
        "target {}x{}, {} candidate tiles of {}x{}",
        target.width(),
        target.height(),
        gallery.len(),
        tile_size,
        tile_size
    );

    // Exact, unchecked-approximate, and Rumba-managed matchers.
    let (reference, exact_choices) =
        build_mosaic(&target, &gallery, tile_size, |x, out| kernel.compute(x, out));
    let (_, unchecked_choices) = build_mosaic(&target, &gallery, tile_size, |x, out| {
        out[0] = app.rumba_npu.invoke(x).expect("width matches").outputs[0];
    });
    // Three settings of the quality knob (Challenge IV: tunability).
    let mut managed_runs = Vec::new();
    for toq in [0.95, 0.99, 0.999] {
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(TuningMode::TargetQuality { toq }, (1.0 - toq) / 3.0)?,
            RuntimeConfig::default(),
        )?;
        system.begin_stream();
        let (img, choices) = build_mosaic(&target, &gallery, tile_size, |x, out| {
            system.process(kernel.as_ref(), x, out).expect("process succeeds");
        });
        let fix_rate = system.stream_fixes() as f64 / system.stream_invocations().max(1) as f64;
        managed_runs.push((toq, img, choices, fix_rate));
    }

    // Mosaic quality = how well each chosen tile's brightness matches its
    // block. (Exact tile *identity* is the wrong metric: many tiles are
    // near-ties, and swapping near-ties is invisible in the mosaic.)
    let block_brightness: Vec<f64> = {
        let bw = target.width() / tile_size;
        let bh = target.height() / tile_size;
        let mut v = Vec::with_capacity(bw * bh);
        for by in 0..bh {
            for bx in 0..bw {
                let mut sum = 0.0;
                for dy in 0..tile_size {
                    for dx in 0..tile_size {
                        sum += target.get(bx * tile_size + dx, by * tile_size + dy);
                    }
                }
                v.push(sum / (tile_size * tile_size) as f64);
            }
        }
        v
    };
    let match_error = |choices: &[usize]| {
        block_brightness
            .iter()
            .zip(choices)
            .map(|(&b, &c)| (gallery.brightness()[c] - b).abs())
            .sum::<f64>()
            / choices.len() as f64
    };
    println!("\nmean |tile brightness - block brightness| (lower is a better mosaic):");
    println!("  exact matcher          {:.4}", match_error(&exact_choices));
    println!("  unchecked accelerator  {:.4}", match_error(&unchecked_choices));
    for (toq, _, choices, fix_rate) in &managed_runs {
        println!(
            "  Rumba @ TOQ {:<6}     {:.4}  ({:.0}% re-executed)",
            toq,
            match_error(choices),
            fix_rate * 100.0
        );
    }

    let (_, strict_img, _, _) = managed_runs.last().expect("three runs");
    let drift =
        reference.pixels().iter().zip(strict_img.pixels()).map(|(a, b)| (a - b).abs()).sum::<f64>()
            / reference.pixels().len() as f64;
    println!("  pixel drift of the strictest mosaic vs the exact assembly: {drift:.4}");
    println!("\nMosaic is Figure 3's cautionary tale. Picking among 96 near-tied tiles");
    println!("demands distances far more accurate than the raw accelerator provides; the");
    println!("quality knob (Challenge IV) walks the application from accelerator-fast-but-");
    println!("noisy all the way back to the exact pipeline's choices.");
    Ok(())
}
