//! Image-processing scenario from the paper's introduction: an edge-
//! detection stage runs on the approximate accelerator, and Rumba keeps the
//! output visually clean by re-executing the windows with large predicted
//! errors — the "few high-error pixels ruin the image" problem of Figure 2.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use rumba::accel::CheckerUnit;
use rumba::apps::image::Image;
use rumba::apps::kernel_by_name;
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{train_app, OfflineConfig};
use rumba::core::tuner::{Tuner, TuningMode};
use rumba::nn::NnDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernel_by_name("sobel").expect("built-in benchmark");
    let app = train_app(kernel.as_ref(), &OfflineConfig { seed: 7, ..OfflineConfig::default() })?;

    // A fresh image the profiler never saw.
    let image = Image::synthetic_with_texture(128, 128, 0xbeef, 0.5);
    let mut windows = NnDataset::new(9, 1)?;
    let mut positions = Vec::new();
    for (w, x, y) in image.windows3() {
        let mut out = [0.0];
        kernel.compute(&w, &mut out);
        windows.push(&w, &out)?;
        positions.push((x, y));
    }

    // Unchecked pass: pure accelerator output.
    let mut unchecked_err = vec![0.0; windows.len()];
    for (i, err) in unchecked_err.iter_mut().enumerate() {
        let approx = app.rumba_npu.invoke(windows.input(i))?.outputs[0];
        *err = (approx - windows.target(i)[0]).abs();
    }

    // Managed pass: best-effort quality while the CPU keeps up.
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree)),
        Tuner::new(TuningMode::BestQuality, 0.1)?,
        RuntimeConfig::default(),
    )?;
    let outcome = system.run(kernel.as_ref(), &windows)?;
    let managed_err: Vec<f64> = (0..windows.len())
        .map(|i| (outcome.merged_outputs[i] - windows.target(i)[0]).abs())
        .collect();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let speckles = |v: &[f64]| v.iter().filter(|&&e| e > 0.3).count();

    println!("edge map: {}x{} ({} windows)", image.width(), image.height(), windows.len());
    println!("\n                       unchecked    Rumba-managed");
    println!(
        "mean pixel error        {:>7.3}      {:>7.3}",
        mean(&unchecked_err),
        mean(&managed_err)
    );
    println!(
        "speckle pixels (>0.3)   {:>7}      {:>7}",
        speckles(&unchecked_err),
        speckles(&managed_err)
    );
    println!(
        "re-executed windows     {:>7}      ({:.1}% of total)",
        outcome.fixes,
        outcome.fixes as f64 / windows.len() as f64 * 100.0
    );
    println!("\nRumba cuts the conspicuous speckles, not just the average error — the");
    println!("difference between Figure 2(b) and 2(c).");
    Ok(())
}
