//! Robotics scenario: a 2-link arm follows a drawn trajectory. Inverse
//! kinematics runs on the approximate accelerator; Rumba re-executes the
//! waypoints whose joint angles it predicts to be badly approximated, so
//! the pen never leaves the line by much.
//!
//! ```text
//! cargo run --release --example robot_arm
//! ```

use rumba::accel::CheckerUnit;
use rumba::apps::kernel_by_name;
use rumba::apps::kernels::forward_kinematics;
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{train_app, OfflineConfig};
use rumba::core::tuner::{Tuner, TuningMode};
use rumba::nn::NnDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernel_by_name("inversek2j").expect("built-in benchmark");
    let app = train_app(kernel.as_ref(), &OfflineConfig { seed: 42, ..OfflineConfig::default() })?;

    // Trajectory: an arc through the arm's front workspace.
    let waypoints = 2_000;
    let mut path = NnDataset::new(2, 2)?;
    for k in 0..waypoints {
        let t = k as f64 / waypoints as f64;
        let radius = 0.45 + 0.25 * (t * std::f64::consts::TAU * 2.0).sin().abs();
        let angle = 0.15 + t * 1.2;
        let (x, y) = (radius * angle.cos(), radius * angle.sin());
        let mut exact = [0.0; 2];
        kernel.compute(&[x, y], &mut exact);
        path.push(&[x, y], &exact)?;
    }

    // Tracking error = distance between commanded and reached positions.
    let tracking = |angles: &[f64], target: &[f64]| {
        let (fx, fy) = forward_kinematics(angles[0], angles[1]);
        ((fx - target[0]).powi(2) + (fy - target[1]).powi(2)).sqrt()
    };

    let mut unchecked = Vec::with_capacity(waypoints);
    for i in 0..path.len() {
        let out = app.rumba_npu.invoke(path.input(i))?.outputs;
        unchecked.push(tracking(&out, path.input(i)));
    }

    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree)),
        Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05)?,
        RuntimeConfig::default(),
    )?;
    let outcome = system.run(kernel.as_ref(), &path)?;
    let managed: Vec<f64> = (0..path.len())
        .map(|i| tracking(&outcome.merged_outputs[i * 2..i * 2 + 2], path.input(i)))
        .collect();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);

    println!("arm trajectory: {} waypoints, both links 0.5 m\n", waypoints);
    println!("{:<14} {:>14} {:>14}", "", "mean deviation", "max deviation");
    println!("{:<14} {:>13.4} m {:>13.4} m", "unchecked", mean(&unchecked), max(&unchecked));
    println!("{:<14} {:>13.4} m {:>13.4} m", "Rumba-managed", mean(&managed), max(&managed));
    println!(
        "\nre-executed {} / {} waypoints ({:.1}%); CPU kept up: {}",
        outcome.fixes,
        waypoints,
        outcome.fixes as f64 / waypoints as f64 * 100.0,
        outcome.pipeline.cpu_kept_up()
    );
    println!("\nThe worst-case deviation is what knocks a pen off its line; Rumba cuts the");
    println!("mean deviation by ~7x and the worst case by ~3x. A trajectory this close to");
    println!("the workspace boundary is hostile territory for the accelerator, so recovery");
    println!("works hard — the quality knob decides how hard.");
    Ok(())
}
