//! Deployment flow: the offline trainers produce a configuration image
//! (accelerator weights + checker coefficients) that is embedded in the
//! application binary and streamed to the accelerator through the config
//! queue at startup — the full Figure-4 path, end to end.
//!
//! ```text
//! cargo run --release --example deployment
//! ```

use rumba::accel::{CheckerUnit, DeploymentImage, NpuParams};
use rumba::apps::{kernel_by_name, Split};
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{train_app, OfflineConfig};
use rumba::core::tuner::{Tuner, TuningMode};
use rumba::nn::encode_model;
use rumba::predict::{decode_tree, encode_tree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernel_by_name("fft").expect("built-in benchmark");

    // ---- build machine: offline training produces the config image ----
    let app = train_app(kernel.as_ref(), &OfflineConfig { seed: 42, ..OfflineConfig::default() })?;
    let image = DeploymentImage::new(encode_model(app.rumba_npu.model()), encode_tree(&app.tree));
    println!(
        "deployment image: {} words ({} accelerator + {} checker)",
        image.total_words(),
        image.npu_words().len(),
        image.checker_words().len()
    );

    // ---- target machine: stream the image through the config queue ----
    let transfer = image.transfer(32, 4);
    println!(
        "config upload: {} words in {} bursts, {} cycles",
        transfer.words, transfer.bursts, transfer.cycles
    );
    let npu = image.instantiate_npu(NpuParams::default())?;
    let checker = decode_tree(image.checker_words())?;

    // ---- run the reconstituted system online ----
    let mut system = RumbaSystem::new(
        npu,
        CheckerUnit::new(Box::new(checker)),
        Tuner::new(TuningMode::TargetQuality { toq: 0.90 }, 0.05)?,
        RuntimeConfig::default(),
    )?;
    let test = kernel.generate(Split::Test, 42);
    let outcome = system.run(kernel.as_ref(), &test)?;

    println!("\nreconstituted system on {}:", kernel.name());
    println!("  output error: {:.1}%", outcome.output_error * 100.0);
    println!("  re-executed:  {} / {} iterations", outcome.fixes, test.len());

    // Sanity: identical to running the original (never-serialized) system.
    let mut original = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree)),
        Tuner::new(TuningMode::TargetQuality { toq: 0.90 }, 0.05)?,
        RuntimeConfig::default(),
    )?;
    let reference = original.run(kernel.as_ref(), &test)?;
    assert_eq!(outcome.merged_outputs, reference.merged_outputs);
    println!("  bit-identical to the never-serialized system: yes");
    Ok(())
}
