//! Financial-analysis scenario: a risk engine prices thousands of options
//! on the approximate accelerator under an *energy budget*, letting Rumba
//! spend its limited re-execution allowance on the worst-priced options.
//!
//! ```text
//! cargo run --release --example financial_risk
//! ```

use rumba::accel::CheckerUnit;
use rumba::apps::{kernel_by_name, Split};
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{train_app, OfflineConfig};
use rumba::core::tuner::{Tuner, TuningMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernel_by_name("blackscholes").expect("built-in benchmark");
    let app = train_app(kernel.as_ref(), &OfflineConfig { seed: 42, ..OfflineConfig::default() })?;
    let portfolio = kernel.generate(Split::Test, 42); // 5 000 options

    // Risk engines care about absolute pricing error (per unit strike):
    // mispricing in money, not in percent of a near-zero premium.
    let abs_errors = |outputs: &dyn Fn(usize) -> f64| -> Vec<f64> {
        (0..portfolio.len()).map(|i| (outputs(i) - portfolio.target(i)[0]).abs()).collect()
    };
    let unchecked = abs_errors(&|i| {
        app.rumba_npu.invoke(portfolio.input(i)).expect("width matches").outputs[0]
    });
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let p99 = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s[(s.len() as f64 * 0.99) as usize]
    };

    println!("pricing {} options on the approximate accelerator", portfolio.len());
    println!("(errors in price units per unit strike; exact premiums span ~0 to 0.45)\n");
    println!("{:<22} {:>10} {:>12} {:>8}", "configuration", "mean err", "p99 err", "fixes");
    println!("{:<22} {:>10.4} {:>12.4} {:>8}", "unchecked", mean(&unchecked), p99(&unchecked), 0);

    // Sweep the per-window re-execution budget (the §3.4 Energy mode).
    for budget in [4usize, 16, 64] {
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(TuningMode::EnergyBudget { budget }, 0.05)?,
            RuntimeConfig { window: 256, ..RuntimeConfig::default() },
        )?;
        let outcome = system.run(kernel.as_ref(), &portfolio)?;
        let out_dim = kernel.output_dim();
        let managed: Vec<f64> = (0..portfolio.len())
            .map(|i| (outcome.merged_outputs[i * out_dim] - portfolio.target(i)[0]).abs())
            .collect();
        println!(
            "{:<22} {:>10.4} {:>12.4} {:>8}",
            format!("budget {budget}/window"),
            mean(&managed),
            p99(&managed),
            outcome.fixes
        );
    }

    println!("\nThe re-execution budget is a dial: each increment buys down both the mean");
    println!("and the worst-case (p99) mispricing, and the energy cost is bounded by");
    println!("construction — §3.4's Energy mode in its natural habitat.");
    Ok(())
}
