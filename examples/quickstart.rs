//! Quickstart: train a Rumba-managed approximate accelerator for one
//! benchmark and run it online with a target output quality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rumba::accel::CheckerUnit;
use rumba::apps::{kernel_by_name, Split};
use rumba::core::report::RunReport;
use rumba::core::runtime::{RumbaSystem, RuntimeConfig};
use rumba::core::trainer::{invocation_errors, train_app, OfflineConfig};
use rumba::core::tuner::{calibrate_threshold, Tuner, TuningMode};
use rumba::energy::WorkloadProfile;
use rumba::predict::ErrorEstimator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick an approximable kernel (pure, element-wise — Table 1).
    let kernel = kernel_by_name("inversek2j").expect("built-in benchmark");
    println!("kernel: {} ({})", kernel.name(), kernel.domain());

    // 2. Offline: train the accelerator network and the error checkers.
    let cfg = OfflineConfig { seed: 42, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg)?;
    println!(
        "accelerator: topology {}, {} cycles/invocation",
        app.rumba_npu.model().mlp().topology_string(),
        app.rumba_npu.cycles_per_invocation()
    );

    // 3. Calibrate the detection threshold for a 90% target quality.
    let train = kernel.generate(Split::Train, 42);
    let mut tree = app.tree.clone();
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| tree.estimate(train.input(i), &[])).collect();
    let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.10);
    println!("calibrated threshold: {threshold:.3}");

    // 4. Online: detection + selective re-execution + tuning.
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree.clone())),
        Tuner::new(TuningMode::TargetQuality { toq: 0.90 }, threshold)?,
        RuntimeConfig::default(),
    )?;
    let test = kernel.generate(Split::Test, 42);
    let outcome = system.run(kernel.as_ref(), &test)?;

    // 5. Compare with the unchecked accelerator and print the run report.
    let unchecked = invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)?;
    let unchecked_error = unchecked.iter().sum::<f64>() / unchecked.len() as f64;
    println!("\nunchecked output error: {:.1}%", unchecked_error * 100.0);

    let workload = WorkloadProfile {
        invocations: test.len(),
        cpu_cycles_per_invocation: kernel.cpu_cycles(),
        kernel_fraction: kernel.kernel_fraction(),
    };
    println!("{}", RunReport::new(kernel.name(), &outcome, &workload));
    Ok(())
}
