#!/usr/bin/env bash
# Repository gate: formatting, lints, build + tests (tier 1), and the
# deterministic-parallelism smoke check (a 2-thread harness run must be
# byte-identical to the serial run). Run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

echo "==> determinism smoke: fig10 with 1 vs 2 threads"
# The trained-model cache would hide a nondeterministic training path
# (both runs would just reload the first run's models), so it is disabled;
# stdout must match byte for byte anyway.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
RUMBA_CACHE=0 RUMBA_THREADS=1 cargo run --release -q -p rumba-bench --bin fig10 \
    >"$smoke_dir/fig10.t1" 2>/dev/null
RUMBA_CACHE=0 RUMBA_THREADS=2 cargo run --release -q -p rumba-bench --bin fig10 \
    >"$smoke_dir/fig10.t2" 2>/dev/null
if ! cmp -s "$smoke_dir/fig10.t1" "$smoke_dir/fig10.t2"; then
    echo "FAIL: fig10 stdout differs between RUMBA_THREADS=1 and 2" >&2
    diff "$smoke_dir/fig10.t1" "$smoke_dir/fig10.t2" | head -20 >&2
    exit 1
fi
echo "    fig10 byte-identical at 1 and 2 threads"

echo "==> ci.sh: all checks passed"
