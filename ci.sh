#!/usr/bin/env bash
# Repository gate: formatting, lints, build + tests (tier 1), and the
# deterministic-parallelism smoke check (a 2-thread harness run must be
# byte-identical to the serial run). Run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
# Vendored shims are exempt from the extra perf lints; everything we own
# must be free of needless collects and redundant clones.
cargo clippy --workspace --all-targets \
    --exclude rand --exclude proptest --exclude criterion \
    -- -D warnings -D clippy::needless_collect -D clippy::redundant_clone

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

echo "==> determinism smoke: fig10 with 1 vs 2 threads"
# The trained-model cache would hide a nondeterministic training path
# (both runs would just reload the first run's models), so it is disabled;
# stdout must match byte for byte anyway.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
RUMBA_CACHE=0 RUMBA_THREADS=1 cargo run --release -q -p rumba-bench --bin fig10 \
    >"$smoke_dir/fig10.t1" 2>/dev/null
RUMBA_CACHE=0 RUMBA_THREADS=2 cargo run --release -q -p rumba-bench --bin fig10 \
    >"$smoke_dir/fig10.t2" 2>/dev/null
if ! cmp -s "$smoke_dir/fig10.t1" "$smoke_dir/fig10.t2"; then
    echo "FAIL: fig10 stdout differs between RUMBA_THREADS=1 and 2" >&2
    diff "$smoke_dir/fig10.t1" "$smoke_dir/fig10.t2" | head -20 >&2
    exit 1
fi
echo "    fig10 byte-identical at 1 and 2 threads"

echo "==> golden check: fig10 output vs ci/fig10.golden (fault-off gate)"
# The batched accelerator path must not move a single output bit relative
# to the committed pre-batching golden transcript. With the fault-injection
# hooks now compiled into the accelerator and runtime, this doubles as the
# fault-off gate: no attached FaultPlan means bit-for-bit legacy behavior.
if ! cmp -s "$smoke_dir/fig10.t1" ci/fig10.golden; then
    echo "FAIL: fig10 stdout differs from ci/fig10.golden" >&2
    diff ci/fig10.golden "$smoke_dir/fig10.t1" | head -20 >&2
    exit 1
fi
echo "    fig10 byte-identical to the golden transcript"

echo "==> telemetry gate: metrics on must not move a bit, and must parse"
# fig10 with a live JSONL sink must still match the golden transcript
# byte for byte (telemetry is purely observational), and the stream it
# writes must be machine-readable.
RUMBA_CACHE=0 RUMBA_THREADS=1 RUMBA_METRICS_OUT="$smoke_dir/fig10.jsonl" \
    cargo run --release -q -p rumba-bench --bin fig10 \
    >"$smoke_dir/fig10.obs" 2>/dev/null
if ! cmp -s "$smoke_dir/fig10.obs" ci/fig10.golden; then
    echo "FAIL: fig10 stdout changed when telemetry was enabled" >&2
    diff ci/fig10.golden "$smoke_dir/fig10.obs" | head -20 >&2
    exit 1
fi
if [ ! -s "$smoke_dir/fig10.jsonl" ]; then
    echo "FAIL: RUMBA_METRICS_OUT produced no telemetry" >&2
    exit 1
fi
# A run-level stream exercises every event path; `rumba report` parses
# both files and rejects malformed lines.
cargo run --release -q -p rumba-cli --bin rumba -- \
    run gaussian --toq 0.95 --metrics-out "$smoke_dir/run.jsonl" >/dev/null
for stream in "$smoke_dir/fig10.jsonl" "$smoke_dir/run.jsonl"; do
    summary=$(cargo run --release -q -p rumba-cli --bin rumba -- report "$stream")
    if ! echo "$summary" | grep -q ", 0 malformed"; then
        echo "FAIL: $stream contains malformed telemetry lines" >&2
        echo "$summary" | head -10 >&2
        exit 1
    fi
done
if ! cargo run --release -q -p rumba-cli --bin rumba -- report "$smoke_dir/run.jsonl" \
    | grep -q "windows:"; then
    echo "FAIL: run stream is missing window_end events" >&2
    exit 1
fi
echo "    telemetry streams parse clean; golden output unchanged"

echo "==> fault-injection smoke: NaN corruption must be quarantined"
# 'rumba faults' fails its own exit code if a managed NaN-injection run
# leaks a non-finite merged output, so success here is the quarantine
# proof; the telemetry stream must record the injections it survived.
cargo run --release -q -p rumba-cli --bin rumba -- \
    faults --kernels gaussian --rate 0.002 --metrics-out "$smoke_dir/faults.jsonl" \
    >"$smoke_dir/faults.txt"
if ! grep -q "merged outputs: all finite" "$smoke_dir/faults.txt"; then
    echo "FAIL: rumba faults did not confirm finite merged outputs" >&2
    head -20 "$smoke_dir/faults.txt" >&2
    exit 1
fi
if ! grep -q '"type":"fault"' "$smoke_dir/faults.jsonl"; then
    echo "FAIL: fault-injection run emitted no fault events" >&2
    exit 1
fi
if ! cargo run --release -q -p rumba-cli --bin rumba -- report "$smoke_dir/faults.jsonl" \
    | grep -q ", 0 malformed"; then
    echo "FAIL: fault telemetry stream contains malformed lines" >&2
    exit 1
fi
echo "    NaN injection quarantined; fault events present and parse clean"

echo "==> serving layer: isolation + backpressure suites at 1 and 4 threads"
# The multiplexed scheduler's determinism contract is thread-count
# independence; the same suites must pass serial and parallel.
RUMBA_THREADS=1 cargo test -q -p rumba-serve >/dev/null
RUMBA_THREADS=4 cargo test -q -p rumba-serve >/dev/null
echo "    rumba-serve suites green at RUMBA_THREADS=1 and 4"

echo "==> golden check: bench-serve trace vs ci/serve_trace.golden"
# The conformance trace is shortest-round-trip formatted JSONL, so a byte
# diff is a bitwise check of the whole serving layer — session state,
# batched NPU offsets, admission control, and fault isolation. It must
# match the committed golden at both thread counts.
RUMBA_CACHE=0 RUMBA_THREADS=1 cargo run --release -q -p rumba-cli --bin rumba -- \
    bench-serve --seed 7 >"$smoke_dir/serve.t1" 2>/dev/null
RUMBA_CACHE=0 RUMBA_THREADS=4 cargo run --release -q -p rumba-cli --bin rumba -- \
    bench-serve --seed 7 >"$smoke_dir/serve.t4" 2>/dev/null
for t in 1 4; do
    if ! cmp -s "$smoke_dir/serve.t$t" ci/serve_trace.golden; then
        echo "FAIL: bench-serve trace (RUMBA_THREADS=$t) differs from ci/serve_trace.golden" >&2
        diff ci/serve_trace.golden "$smoke_dir/serve.t$t" | head -20 >&2
        exit 1
    fi
done
echo "    serve trace byte-identical to the golden at 1 and 4 threads"

echo "==> SIMD gate: goldens byte-identical with RUMBA_SIMD=0 and 1 at 1 and 4 threads"
# The lane-reduction contract (DESIGN.md §11) promises the vector kernels
# reproduce the scalar reduction bit for bit, so both committed goldens
# must survive every SIMD x thread-count combination unchanged.
for simd in 0 1; do
    for t in 1 4; do
        RUMBA_CACHE=0 RUMBA_THREADS=$t RUMBA_SIMD=$simd \
            cargo run --release -q -p rumba-bench --bin fig10 \
            >"$smoke_dir/fig10.s$simd.t$t" 2>/dev/null
        if ! cmp -s "$smoke_dir/fig10.s$simd.t$t" ci/fig10.golden; then
            echo "FAIL: fig10 (RUMBA_SIMD=$simd, RUMBA_THREADS=$t) differs from ci/fig10.golden" >&2
            diff ci/fig10.golden "$smoke_dir/fig10.s$simd.t$t" | head -20 >&2
            exit 1
        fi
        RUMBA_CACHE=0 RUMBA_THREADS=$t RUMBA_SIMD=$simd \
            cargo run --release -q -p rumba-cli --bin rumba -- \
            bench-serve --seed 7 >"$smoke_dir/serve.s$simd.t$t" 2>/dev/null
        if ! cmp -s "$smoke_dir/serve.s$simd.t$t" ci/serve_trace.golden; then
            echo "FAIL: bench-serve trace (RUMBA_SIMD=$simd, RUMBA_THREADS=$t) differs from ci/serve_trace.golden" >&2
            diff ci/serve_trace.golden "$smoke_dir/serve.s$simd.t$t" | head -20 >&2
            exit 1
        fi
    done
done
echo "    fig10 + serve trace byte-identical under RUMBA_SIMD=0 and 1 at 1 and 4 threads"

echo "==> sharded TCP gate: multi-client trace vs ci/serve_net.golden"
# The same seeded workload over real TCP — one lockstep connection per
# tenant, fanned into shard threads by the session-placement hash. The
# trace must match the committed golden at every shard x thread x SIMD
# combination: shard count, like thread count and ISA, must be
# unobservable in the payload bytes.
for shards in 1 2; do
    for simd in 0 1; do
        for t in 1 4; do
            RUMBA_CACHE=0 RUMBA_THREADS=$t RUMBA_SIMD=$simd \
                cargo run --release -q -p rumba-cli --bin rumba -- \
                bench-serve --seed 7 --shards $shards \
                >"$smoke_dir/serve_net.n$shards.s$simd.t$t" 2>/dev/null
            if ! cmp -s "$smoke_dir/serve_net.n$shards.s$simd.t$t" ci/serve_net.golden; then
                echo "FAIL: sharded bench-serve trace (shards=$shards, RUMBA_SIMD=$simd, RUMBA_THREADS=$t) differs from ci/serve_net.golden" >&2
                diff ci/serve_net.golden "$smoke_dir/serve_net.n$shards.s$simd.t$t" | head -20 >&2
                exit 1
            fi
        done
    done
done
echo "    sharded TCP trace byte-identical at shards {1,2} x SIMD {0,1} x threads {1,4}"

echo "==> golden check: compensate sweep vs ci/compensate.golden"
# The predict-and-compensate sweep (signed-error fits, band search,
# energy split) is pure arithmetic over the deterministic test streams,
# so its report must be byte-identical at every thread x SIMD
# combination — and must match the committed golden bit for bit.
for simd in 0 1; do
    for t in 1 4; do
        RUMBA_CACHE=0 RUMBA_THREADS=$t RUMBA_SIMD=$simd \
            cargo run --release -q -p rumba-cli --bin rumba -- \
            compensate >"$smoke_dir/comp.s$simd.t$t" 2>/dev/null
        if ! cmp -s "$smoke_dir/comp.s$simd.t$t" ci/compensate.golden; then
            echo "FAIL: compensate sweep (RUMBA_SIMD=$simd, RUMBA_THREADS=$t) differs from ci/compensate.golden" >&2
            diff ci/compensate.golden "$smoke_dir/comp.s$simd.t$t" | head -20 >&2
            exit 1
        fi
    done
done
echo "    compensate sweep byte-identical at SIMD {0,1} x threads {1,4}"

echo "==> golden check: model-zoo sweep vs ci/zoo.golden"
# The zoo sweep (tier ladder training, topology search, bar calibration,
# per-invocation routing, energy accounting) is pure arithmetic over the
# deterministic splits: router decisions are fixed serially at the
# calibrated bar, so the report must be byte-identical at every
# thread x SIMD combination — and match the committed golden bit for
# bit. The pre-existing run/fig goldens double as the proof that the
# zoo-disabled paths are untouched.
for simd in 0 1; do
    for t in 1 4; do
        RUMBA_CACHE=0 RUMBA_THREADS=$t RUMBA_SIMD=$simd \
            cargo run --release -q -p rumba-cli --bin rumba -- \
            zoo --seed 7 >"$smoke_dir/zoo.s$simd.t$t" 2>/dev/null
        if ! cmp -s "$smoke_dir/zoo.s$simd.t$t" ci/zoo.golden; then
            echo "FAIL: zoo sweep (RUMBA_SIMD=$simd, RUMBA_THREADS=$t) differs from ci/zoo.golden" >&2
            diff ci/zoo.golden "$smoke_dir/zoo.s$simd.t$t" | head -20 >&2
            exit 1
        fi
    done
done
echo "    zoo sweep byte-identical at SIMD {0,1} x threads {1,4}"

echo "==> golden check: open-world drift sweep vs ci/drift.golden"
# The drift sweep streams seeded open-world scenarios (every sample a
# pure hash of seed x scenario x invocation) through the reset-only
# watchdog and the online checker re-fit; its detection-coverage report
# must be byte-identical at every thread x SIMD combination — and match
# the committed golden bit for bit. The golden itself pins the recovery
# claim: at seed 7 at least one kernel x scenario line reads
# "recovered". The refit path is strictly opt-in, so the pre-existing
# fig10 / serve / compensate / zoo goldens above double as the byte-
# identity proof for every refit-off code path.
for simd in 0 1; do
    for t in 1 4; do
        RUMBA_CACHE=0 RUMBA_THREADS=$t RUMBA_SIMD=$simd \
            cargo run --release -q -p rumba-cli --bin rumba -- \
            drift --seed 7 >"$smoke_dir/drift.s$simd.t$t" 2>/dev/null
        if ! cmp -s "$smoke_dir/drift.s$simd.t$t" ci/drift.golden; then
            echo "FAIL: drift sweep (RUMBA_SIMD=$simd, RUMBA_THREADS=$t) differs from ci/drift.golden" >&2
            diff ci/drift.golden "$smoke_dir/drift.s$simd.t$t" | head -20 >&2
            exit 1
        fi
    done
done
if ! grep -q "recovered" ci/drift.golden; then
    echo "FAIL: ci/drift.golden pins no recovered kernel x scenario combo" >&2
    exit 1
fi
echo "    drift sweep byte-identical at SIMD {0,1} x threads {1,4}; recovery pinned"

echo "==> matrix bench smoke (bit-exactness gate + allocation probe)"
# The bench asserts batched == per-sample bitwise and zero steady-state
# allocations before it times anything, so a short run is a real check.
cargo bench -p rumba-bench --bench matrix >/dev/null

echo "==> ci.sh: all checks passed"
