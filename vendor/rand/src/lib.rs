//! Vendored, std-only subset of the `rand` 0.8 API.
//!
//! The Rumba workspace builds in fully offline environments, so the small
//! slice of `rand` it actually uses is provided in-tree: a seedable,
//! deterministic generator ([`rngs::StdRng`]), uniform sampling over ranges
//! ([`Rng::gen_range`]), plain draws ([`Rng::gen`]), and Fisher–Yates
//! shuffling ([`seq::SliceRandom::shuffle`]).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the same
//! stream as upstream `rand`'s ChaCha-based `StdRng`, but the workspace
//! never depended on upstream's exact stream, only on *within-workspace*
//! determinism: the same `u64` seed always reproduces the same sequence,
//! on every platform, because everything below is pure integer arithmetic.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their "natural" distribution: `f64` in
/// `[0, 1)`, integers over their full width, `bool` as a fair coin.
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening multiply maps a 64-bit draw onto the span with
                // negligible bias for any span this workspace uses.
                let draw = rng.next_u64() as u128;
                let offset = (draw * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the type's natural distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<Sp: SampleRange>(&mut self, range: Sp) -> Sp::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands a single `u64` into well-mixed state words.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities.

    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.5..7.25);
            assert!((-3.5..7.25).contains(&x));
            let n = rng.gen_range(0..17usize);
            assert!(n < 17);
            let s = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn integer_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let run = |seed| {
            let mut v: Vec<usize> = (0..50).collect();
            v.shuffle(&mut StdRng::seed_from_u64(seed));
            v
        };
        let a = run(9);
        assert_eq!(a, run(9));
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bool_draws_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
