//! Vendored, std-only subset of the `criterion` benchmarking API.
//!
//! The Rumba workspace builds fully offline, so the harness surface its
//! benches use is provided in-tree: [`Criterion`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros (both invocation forms). Measurement is a straightforward
//! warm-up + timed-samples loop reporting min/mean/max wall-clock per
//! iteration — enough to track relative performance across commits without
//! the statistical machinery of the real crate.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Untimed warm-up budget before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total timed budget across all samples of one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.to_owned() }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, name, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let qualified = format!("{}/{name}", self.group);
        run_benchmark(self.criterion, &qualified, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the closure under measurement; call [`Bencher::iter`] with the
/// code to time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting the configured
    /// number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also calibrates how many iterations one sample needs so
        // each sample is long enough to time reliably.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter =
            warm_start.elapsed() / u32::try_from(warm_iters.min(u64::from(u32::MAX))).unwrap_or(1);
        let per_sample =
            self.measurement_time / u32::try_from(self.sample_size.max(1)).unwrap_or(1);
        let iters = if per_iter.is_zero() {
            1_000
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.iters_per_sample = iters;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(config: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 0,
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        sample_size: config.sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() || bencher.iters_per_sample == 0 {
        println!("{name:<40} (no measurement: Bencher::iter was not called)");
        return;
    }
    let per_iter_ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|s| s.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("{name:<40} time: [{} {} {}]", format_ns(min), format_ns(mean), format_ns(max));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// configuration (both upstream invocation forms are supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // minimal harness has no tunables, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = fast_config();
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("group");
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_function("b", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group! {
        name = configured_group;
        config = fast_config();
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn both_group_forms_expand() {
        plain_group();
        configured_group();
    }
}
