//! Vendored, std-only subset of the `proptest` API.
//!
//! Provides exactly the surface the Rumba workspace's property tests use:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], range
//! strategies, [`collection::vec`], [`array::uniform3`]/[`array::uniform9`],
//! and [`bool::ANY`]. Case generation is deterministic: every test derives
//! its RNG stream from a stable hash of the test's name, so failures
//! reproduce without a persistence file.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of generated cases per property test.
pub const CASES: u32 = 96;

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given explanation.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A reusable generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

pub mod bool {
    //! Boolean strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy drawing a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin strategy value.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use super::Strategy;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use rand::rngs::StdRng;

    use super::Strategy;

    macro_rules! uniform_array {
        ($name:ident, $n:literal) => {
            /// Strategy producing an array with every element drawn from
            /// the same element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        };
    }

    uniform_array!(uniform3, 3);
    uniform_array!(uniform9, 9);

    /// See [`uniform3`]/[`uniform9`].
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// Runs `case` for [`CASES`] deterministic cases; `case` returns the
/// rendered argument list (for diagnostics) plus the assertion outcome.
///
/// # Panics
///
/// Panics with the failing case's arguments on the first failed case.
pub fn run_cases(
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
) {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for case_index in 0..CASES {
        let (args, outcome) = case(&mut rng);
        if let Err(e) = outcome {
            panic!(
                "property '{test_name}' failed at case {case_index}/{CASES}: {e}\n  inputs: {args}"
            );
        }
    }
}

/// Defines deterministic property tests over strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                    let __args = [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (__args, __outcome)
                });
            }
        )*
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the enclosing property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

pub mod prelude {
    //! The glob import the tests use.
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n = {n}");
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in collection::vec(0.0f64..1.0, 2..6),
            w in collection::vec(0u32..10, 4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn arrays_have_fixed_shape(a in array::uniform9(0.0f64..1.0)) {
            prop_assert_eq!(a.len(), 9);
            prop_assert!(a.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        #[allow(clippy::overly_complex_bool_expr)] // tautology on purpose: exercises the macro
        fn bools_generate(b in crate::bool::ANY) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            run_cases("doomed", |rng| {
                let x = Strategy::generate(&(0u32..10), rng);
                let outcome =
                    if x < 100 { Err(TestCaseError::fail("always fails".into())) } else { Ok(()) };
                (format!("x = {x:?}"), outcome)
            });
        });
        let payload = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(payload.contains("doomed"), "{payload}");
        assert!(payload.contains("inputs: x ="), "{payload}");
    }

    #[test]
    fn case_streams_are_deterministic_per_test_name() {
        let collect = |name: &str| {
            let mut seen = Vec::new();
            run_cases(name, |rng| {
                seen.push(Strategy::generate(&(0u64..1_000_000), rng));
                (String::new(), Ok(()))
            });
            seen
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }
}
