//! Rumba — online quality management for approximate accelerators.
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! - [`nn`]: from-scratch MLP and trainer (the accelerator's function),
//! - [`apps`]: the Table-1 benchmark kernels, datasets, and error metrics,
//! - [`predict`]: light-weight error predictors (linear, tree, EMA),
//! - [`accel`]: cycle-level NPU model with checker hardware and queues,
//! - [`energy`]: analytical timing/energy models (Table-2 core, NPU),
//! - [`core`]: the Rumba runtime — detection, recovery, tuning, pipeline,
//! - [`serve`]: the multi-tenant serving layer behind `rumba serve`.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the paper-to-module map.

pub use rumba_accel as accel;
pub use rumba_apps as apps;
pub use rumba_core as core;
pub use rumba_energy as energy;
pub use rumba_nn as nn;
pub use rumba_predict as predict;
pub use rumba_serve as serve;
